package netsim

import (
	"fmt"
	"runtime"
	"strconv"
	"testing"
	"time"
)

// These tests pin the semantics of the batched delivery fabric
// (fabric.go): same-destination ordering, seed-stable loss decisions,
// cut-at-send partitioning, the Close drain, and the whole point of
// the exercise — goroutine count independent of in-flight datagrams.

// TestFabricSameDestOrdering: a burst of same-latency datagrams to one
// destination arrives in send order. They share a wheel tick cohort
// (ordered by send sequence) and a delivery lane (serialized), so
// latency must not shuffle them.
func TestFabricSameDestOrdering(t *testing.T) {
	n := New("ether0", WithLatency(5*time.Millisecond, 0))
	defer n.Close()
	s := &sink{}
	if err := n.Attach(2, s); err != nil {
		t.Fatal(err)
	}
	const burst = 200
	for i := 0; i < burst; i++ {
		if err := n.Send(dg(2, strconv.Itoa(i))); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.count() < burst {
		if time.Now().After(deadline) {
			t.Fatalf("delivered %d of %d", s.count(), burst)
		}
		time.Sleep(time.Millisecond)
	}
	for i, p := range s.payloads() {
		if p != strconv.Itoa(i) {
			t.Fatalf("position %d holds %q: same-destination burst reordered", i, p)
		}
	}
}

// TestFabricLossMatchesSynchronous: loss is decided at Send under the
// seeded rng, ahead of the fabric, so the set of surviving datagrams
// for a given seed is identical with and without latency.
func TestFabricLossMatchesSynchronous(t *testing.T) {
	run := func(opts ...Option) []string {
		n := New("ether0", append([]Option{WithLoss(0.3), WithSeed(42)}, opts...)...)
		s := &sink{}
		if err := n.Attach(2, s); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 500; i++ {
			if err := n.Send(dg(2, strconv.Itoa(i))); err != nil {
				t.Fatal(err)
			}
		}
		n.Close() // drains the wheel in the latency run
		return s.payloads()
	}
	sync := run()
	delayed := run(WithLatency(3*time.Millisecond, 0))
	if len(sync) != len(delayed) {
		t.Fatalf("latency changed the loss outcome: %d survivors synchronous, %d delayed",
			len(sync), len(delayed))
	}
	for i := range sync {
		if sync[i] != delayed[i] {
			t.Fatalf("survivor %d differs: %q synchronous, %q delayed", i, sync[i], delayed[i])
		}
	}
	if len(sync) == 500 || len(sync) == 0 {
		t.Fatalf("loss 0.3 left %d of 500: rng not applied", len(sync))
	}
}

// TestFabricCutSeversAtSend: a datagram sent across a cut link is lost
// even with latency configured, while one already in flight when the
// cut lands still arrives — the cut severs the link, not the ether.
func TestFabricCutSeversAtSend(t *testing.T) {
	n := New("ether0", WithLatency(20*time.Millisecond, 0))
	defer n.Close()
	s := &sink{}
	if err := n.Attach(2, s); err != nil {
		t.Fatal(err)
	}
	if err := n.Send(dg(2, "before-cut")); err != nil {
		t.Fatal(err)
	}
	n.Partition(1, 2)
	if err := n.Send(dg(2, "after-cut")); err != nil {
		t.Fatal(err) // silent loss: Send itself succeeds
	}
	deadline := time.Now().Add(2 * time.Second)
	for s.count() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("in-flight datagram never arrived")
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(50 * time.Millisecond) // past the after-cut datagram's due time
	if got := s.payloads(); len(got) != 1 || got[0] != "before-cut" {
		t.Fatalf("delivered %v, want only the pre-cut datagram", got)
	}
}

// TestFabricCloseDrainsWheel: Close flushes every parked flight — even
// ones whose due time is far in the future — in due order.
func TestFabricCloseDrainsWheel(t *testing.T) {
	n := New("ether0", WithLatency(10*time.Second, 0)) // nothing fires naturally
	s := &sink{}
	if err := n.Attach(2, s); err != nil {
		t.Fatal(err)
	}
	const parked = 300
	for i := 0; i < parked; i++ {
		if err := n.Send(dg(2, strconv.Itoa(i))); err != nil {
			t.Fatal(err)
		}
	}
	if s.count() != 0 {
		t.Fatal("10s-latency datagrams delivered early")
	}
	start := time.Now()
	n.Close()
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("Close took %v: waited for due times instead of draining", elapsed)
	}
	if got := s.count(); got != parked {
		t.Fatalf("Close drained %d of %d parked flights", got, parked)
	}
	for i, p := range s.payloads() {
		if p != strconv.Itoa(i) {
			t.Fatalf("drain position %d holds %q: flush broke due order", i, p)
		}
	}
}

// TestFabricGoroutinesBounded: thousands of in-flight datagrams ride
// the fixed fabric machinery (one ticker, four lanes) instead of a
// goroutine each. This is the density claim the seed's AfterFunc
// design failed.
func TestFabricGoroutinesBounded(t *testing.T) {
	n := New("ether0", WithLatency(250*time.Millisecond, 0))
	sinks := make([]*sink, 16)
	for h := range sinks {
		sinks[h] = &sink{}
		if err := n.Attach(uint32(h+2), sinks[h]); err != nil {
			t.Fatal(err)
		}
	}
	base := runtime.NumGoroutine()
	const inFlight = 5000
	for i := 0; i < inFlight; i++ {
		if err := n.Send(dg(uint32(i%16+2), "x")); err != nil {
			t.Fatal(err)
		}
	}
	if grew := runtime.NumGoroutine() - base; grew > 8 {
		t.Fatalf("%d in-flight datagrams grew goroutines by %d, want <= 8 (fabric only)", inFlight, grew)
	}
	n.Close()
	total := 0
	for _, s := range sinks {
		total += s.count()
	}
	if total != inFlight {
		t.Fatalf("delivered %d of %d after Close", total, inFlight)
	}
}

// TestFabricJitterSpreadsDelivery: jitter picks different due ticks,
// and every datagram still arrives exactly once.
func TestFabricJitterSpreadsDelivery(t *testing.T) {
	n := New("ether0", WithLatency(2*time.Millisecond, 5*time.Millisecond), WithSeed(7))
	s := &sink{}
	if err := n.Attach(2, s); err != nil {
		t.Fatal(err)
	}
	const sent = 400
	for i := 0; i < sent; i++ {
		if err := n.Send(dg(2, fmt.Sprintf("j%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	n.Close()
	if got := s.count(); got != sent {
		t.Fatalf("delivered %d of %d with jitter", got, sent)
	}
}
