package netsim

import (
	"sort"
	"sync"
	"time"
)

// This file implements the network's batched delivery fabric: the
// replacement for one time.AfterFunc goroutine per delayed datagram.
// Delayed datagrams park in a coarse timer wheel (1ms ticks, 256
// slots) advanced by a single ticker goroutine; due flights drain
// through a small fixed set of delivery lanes. Ten thousand datagrams
// in flight cost ten thousand queue entries and five goroutines, not
// ten thousand goroutines.
//
// Ordering: all datagrams to one destination host hash to the same
// lane, and flights fire in (due tick, send sequence) order, so two
// same-latency datagrams to the same destination arrive in send order
// — the property the kernel's per-socket FIFO queues observe. Loss,
// reordering, and partition decisions stay in Network.Send, ahead of
// the fabric, so a seeded run drops the same datagrams whether or not
// latency is configured.

const (
	tickGranularity = time.Millisecond
	wheelSlots      = 256
	fabricLanes     = 4
)

// flight is one delayed datagram parked in the wheel.
type flight struct {
	due uint64 // wheel tick at which to deliver
	seq uint64 // send order; tiebreak within a tick and for the close flush
	ep  Endpoint
	dg  Datagram
}

// lane is one serialized delivery queue. Same-destination flights
// always land in the same lane, preserving their order end to end.
type lane struct {
	mu     sync.Mutex
	cond   *sync.Cond
	q      []flight
	closed bool
}

func newLane() *lane {
	l := &lane{}
	l.cond = sync.NewCond(&l.mu)
	return l
}

func (l *lane) push(fl flight) {
	l.mu.Lock()
	l.q = append(l.q, fl)
	l.cond.Signal()
	l.mu.Unlock()
}

// pop blocks for the next flight; it drains the queue fully before
// honoring close, so nothing pushed ahead of close is lost.
func (l *lane) pop() (flight, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for len(l.q) == 0 {
		if l.closed {
			return flight{}, false
		}
		l.cond.Wait()
	}
	fl := l.q[0]
	n := copy(l.q, l.q[1:])
	l.q[n] = flight{}
	l.q = l.q[:n]
	return fl, true
}

func (l *lane) close() {
	l.mu.Lock()
	l.closed = true
	l.cond.Broadcast()
	l.mu.Unlock()
}

// fabric is a network's shared delivery machinery, created lazily on
// the first delayed datagram so synchronous networks pay nothing.
type fabric struct {
	mu      sync.Mutex
	slots   [wheelSlots][]flight
	tick    uint64
	seq     uint64
	pending int        // flights in the wheel or in a lane
	drained *sync.Cond // signaled when pending reaches zero

	lanes  [fabricLanes]*lane
	stopCh chan struct{}
	tickWg sync.WaitGroup
	laneWg sync.WaitGroup
}

func newFabric() *fabric {
	f := &fabric{stopCh: make(chan struct{})}
	f.drained = sync.NewCond(&f.mu)
	for i := range f.lanes {
		f.lanes[i] = newLane()
		f.laneWg.Add(1)
		go f.laneWorker(f.lanes[i])
	}
	f.tickWg.Add(1)
	go f.tickLoop()
	return f
}

// enqueue parks a datagram in the wheel for delivery after delay.
func (f *fabric) enqueue(ep Endpoint, dg Datagram, delay time.Duration) {
	ticks := uint64((delay + tickGranularity - 1) / tickGranularity)
	if ticks == 0 {
		ticks = 1
	}
	f.mu.Lock()
	f.seq++
	fl := flight{due: f.tick + ticks, seq: f.seq, ep: ep, dg: dg}
	slot := &f.slots[fl.due%wheelSlots]
	*slot = append(*slot, fl)
	f.pending++
	f.mu.Unlock()
}

// advance moves the wheel to tick `to` and returns the flights that
// came due, ordered by (due, seq).
func (f *fabric) advance(to uint64) []flight {
	f.mu.Lock()
	if to <= f.tick {
		f.mu.Unlock()
		return nil
	}
	var due []flight
	from := f.tick + 1
	if to-f.tick >= wheelSlots {
		// A stall longer than one revolution: every slot may hold due
		// work; one pass over the wheel covers them all.
		from = to - wheelSlots + 1
	}
	for t := from; t <= to; t++ {
		slot := &f.slots[t%wheelSlots]
		kept := (*slot)[:0]
		for _, fl := range *slot {
			if fl.due <= to {
				due = append(due, fl)
			} else {
				kept = append(kept, fl) // a later revolution owns it
			}
		}
		*slot = kept
	}
	f.tick = to
	f.mu.Unlock()
	sortFlights(due)
	return due
}

func sortFlights(fls []flight) {
	sort.Slice(fls, func(i, j int) bool {
		if fls[i].due != fls[j].due {
			return fls[i].due < fls[j].due
		}
		return fls[i].seq < fls[j].seq
	})
}

func (f *fabric) dispatch(fl flight) {
	f.lanes[fl.dg.Dst.Host%fabricLanes].push(fl)
}

// tickLoop advances the wheel against the wall clock — the one timer
// goroutine standing in for the per-datagram AfterFunc goroutines.
func (f *fabric) tickLoop() {
	defer f.tickWg.Done()
	ticker := time.NewTicker(tickGranularity)
	defer ticker.Stop()
	start := time.Now()
	for {
		select {
		case <-f.stopCh:
			return
		case <-ticker.C:
			now := uint64(time.Since(start) / tickGranularity)
			for _, fl := range f.advance(now) {
				f.dispatch(fl)
			}
		}
	}
}

// laneWorker delivers one lane's flights in order.
func (f *fabric) laneWorker(l *lane) {
	defer f.laneWg.Done()
	for {
		fl, ok := l.pop()
		if !ok {
			return
		}
		fl.ep.DeliverDatagram(fl.dg)
		f.mu.Lock()
		f.pending--
		if f.pending == 0 {
			f.drained.Broadcast()
		}
		f.mu.Unlock()
	}
}

// close drains the fabric: stop the clock, flush everything still in
// the wheel (in due order) through the lanes, wait for the last
// delivery, and retire the workers. Network.Close's guarantee that no
// pending delivery outlives the simulation rests here.
func (f *fabric) close() {
	close(f.stopCh)
	f.tickWg.Wait()

	f.mu.Lock()
	var rest []flight
	for i := range f.slots {
		rest = append(rest, f.slots[i]...)
		f.slots[i] = nil
	}
	f.mu.Unlock()
	sortFlights(rest)
	for _, fl := range rest {
		f.dispatch(fl)
	}

	f.mu.Lock()
	for f.pending > 0 {
		f.drained.Wait()
	}
	f.mu.Unlock()
	for _, l := range f.lanes {
		l.close()
	}
	f.laneWg.Wait()
}
