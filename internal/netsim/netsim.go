// Package netsim simulates the internetwork connecting the machines of
// the monitored cluster.
//
// The paper's model of communication (section 3.1) distinguishes only
// two transport semantics: datagrams ("delivery ... is not guaranteed,
// though it is likely. Nor is the order ... guaranteed") and streams
// (reliable, ordered byte streams). Section 3.5.4 additionally notes
// that a host may be a member of two or more networks, with a different
// address on each, which is why socket names must be exchanged as
// (literal host name, port) rather than as addresses.
//
// Network reproduces the datagram side: an addressed fabric that can
// drop, delay, and reorder datagrams under a seeded random source.
// Stream connections are reliable and ordered by definition, so the
// kernel implements them as directly paired socket buffers; no paper
// claim depends on stream timing, and keeping streams synchronous keeps
// the simulation deterministic. Partitions still reach streams: the
// cut hook (SetCutHook) lets the kernel reset established connections
// crossing a cut, the way a long partition resets real TCP sessions.
package netsim

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Errors reported by the fabric.
var (
	ErrNoHost   = errors.New("netsim: no such host on network (EHOSTUNREACH)")
	ErrClosed   = errors.New("netsim: network closed")
	ErrTooBig   = errors.New("netsim: datagram exceeds maximum size (EMSGSIZE)")
	ErrAttached = errors.New("netsim: host id already attached")
	ErrNetDown  = errors.New("netsim: network is down (ENETDOWN)")
)

// MaxDatagram is the largest datagram the fabric will carry, matching
// the common 4.2BSD UDP limit order of magnitude.
const MaxDatagram = 8192

// Addr is a network-layer address: which network, which host on it,
// and which port. A multi-homed machine has one Addr per attached
// network (paper section 3.5.4).
type Addr struct {
	Net  string
	Host uint32
	Port uint16
}

func (a Addr) String() string {
	return fmt.Sprintf("%s/%d:%d", a.Net, a.Host, a.Port)
}

// Datagram is one unreliable message in flight. SrcName carries the
// sender's full socket name (section 3.1: recvfrom reports the source),
// which the fabric treats as opaque. SentAt is the sending machine's
// clock reading at transmission; the receiving kernel uses it for
// clock gossip.
type Datagram struct {
	Src     Addr
	Dst     Addr
	SrcName string
	SentAt  time.Duration
	Data    []byte
}

// Endpoint receives datagrams addressed to one host. The kernel of
// each machine implements this for each network it attaches to.
// DeliverDatagram may be called from fabric goroutines; implementations
// must be safe for concurrent use and must not block for long.
type Endpoint interface {
	DeliverDatagram(dg Datagram)
}

// Network is one broadcast-domain of the simulated internetwork.
type Network struct {
	name string

	mu      sync.Mutex
	eps     map[uint32]Endpoint
	rng     *rand.Rand
	loss    float64
	reorder float64
	latency time.Duration
	jitter  time.Duration
	held    *Datagram // datagram held back for reordering
	closed  bool
	down    bool                 // whole network administratively down
	cuts    map[linkKey]struct{} // severed host pairs (partitions)
	cutHook func(a, b uint32)    // called after a link is newly cut

	fab *fabric // batched delayed-delivery machinery (fabric.go), lazily built
}

// linkKey identifies one bidirectional host pair, order-normalized.
type linkKey struct{ a, b uint32 }

func link(a, b uint32) linkKey {
	if a > b {
		a, b = b, a
	}
	return linkKey{a, b}
}

// Option configures a Network.
type Option func(*Network)

// WithLoss sets the independent per-datagram drop probability.
func WithLoss(rate float64) Option {
	return func(n *Network) { n.loss = rate }
}

// WithReorder sets the probability that a datagram is held back and
// delivered after the next datagram to the same network.
func WithReorder(rate float64) Option {
	return func(n *Network) { n.reorder = rate }
}

// WithLatency sets a fixed delivery delay plus a uniform jitter bound.
// The default is synchronous delivery, which keeps tests deterministic.
func WithLatency(latency, jitter time.Duration) Option {
	return func(n *Network) { n.latency, n.jitter = latency, jitter }
}

// WithSeed seeds the fabric's random source so loss and reordering are
// reproducible.
func WithSeed(seed int64) Option {
	return func(n *Network) { n.rng = rand.New(rand.NewSource(seed)) }
}

// New returns a network with the given name. Without options it is
// perfectly reliable and synchronous.
func New(name string, opts ...Option) *Network {
	n := &Network{
		name: name,
		eps:  make(map[uint32]Endpoint),
		rng:  rand.New(rand.NewSource(1)),
		cuts: make(map[linkKey]struct{}),
	}
	for _, o := range opts {
		o(n)
	}
	return n
}

// Name returns the network's name.
func (n *Network) Name() string { return n.name }

// Attach registers an endpoint as the given host id on this network.
func (n *Network) Attach(host uint32, ep Endpoint) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return ErrClosed
	}
	if _, ok := n.eps[host]; ok {
		return fmt.Errorf("%w: %d", ErrAttached, host)
	}
	n.eps[host] = ep
	return nil
}

// Detach removes a host from the network.
func (n *Network) Detach(host uint32) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.eps, host)
}

// Partition severs the link between two hosts: datagrams between them
// are silently lost (the sender cannot tell a cut from congestion) and
// the kernel refuses new stream connections across it. The cut is
// bidirectional. Partitioning is idempotent and undone by Heal or
// SetLinkDown(a, b, false).
func (n *Network) Partition(hostA, hostB uint32) {
	n.SetLinkDown(hostA, hostB, true)
}

// PartitionNets splits the network into two sides: every link from a
// host in a to a host in b is cut — the classic split-brain fault.
// Links within each side are untouched.
func (n *Network) PartitionNets(a, b []uint32) {
	n.mu.Lock()
	var cut [][2]uint32
	for _, ha := range a {
		for _, hb := range b {
			if ha == hb {
				continue
			}
			if _, dup := n.cuts[link(ha, hb)]; dup {
				continue
			}
			n.cuts[link(ha, hb)] = struct{}{}
			cut = append(cut, [2]uint32{ha, hb})
		}
	}
	hook := n.cutHook
	n.mu.Unlock()
	if hook != nil {
		for _, pair := range cut {
			hook(pair[0], pair[1])
		}
	}
}

// SetLinkDown cuts (down=true) or restores (down=false) the link
// between two hosts.
func (n *Network) SetLinkDown(hostA, hostB uint32, down bool) {
	n.mu.Lock()
	var hook func(a, b uint32)
	if down {
		if _, dup := n.cuts[link(hostA, hostB)]; !dup {
			n.cuts[link(hostA, hostB)] = struct{}{}
			hook = n.cutHook
		}
	} else {
		delete(n.cuts, link(hostA, hostB))
	}
	n.mu.Unlock()
	if hook != nil {
		hook(hostA, hostB)
	}
}

// SetCutHook registers a function called whenever a link between two
// hosts is newly cut (Partition, SetLinkDown, PartitionNets). The
// kernel uses it to reset established stream connections crossing the
// cut — a partition must break live connections, not only refuse new
// ones. The hook runs outside the network's lock and may call back
// into the network (Reachable). Healing has no hook: datagrams resume
// on their own and severed streams stay severed.
func (n *Network) SetCutHook(fn func(a, b uint32)) {
	n.mu.Lock()
	n.cutHook = fn
	n.mu.Unlock()
}

// SetDown takes the whole network down (or back up). While down, Send
// fails with ErrNetDown — the local interface is gone, so unlike a
// partition the sender can tell.
func (n *Network) SetDown(down bool) {
	n.mu.Lock()
	n.down = down
	n.mu.Unlock()
}

// Heal removes every partition and brings the network back up.
// Datagrams lost while the faults were active stay lost.
func (n *Network) Heal() {
	n.mu.Lock()
	n.cuts = make(map[linkKey]struct{})
	n.down = false
	n.mu.Unlock()
}

// Reachable reports whether traffic can currently flow between two
// attached hosts. The kernel consults it before establishing a stream
// connection across the fabric.
func (n *Network) Reachable(hostA, hostB uint32) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed || n.down {
		return false
	}
	if _, cut := n.cuts[link(hostA, hostB)]; cut {
		return false
	}
	_, aOK := n.eps[hostA]
	_, bOK := n.eps[hostB]
	return aOK && bOK
}

// Send injects a datagram into the fabric. It returns an error only
// for local conditions (unknown destination host, oversize datagram,
// closed or downed network); silent loss in transit is, as on a real
// network, not reported to the sender. A datagram crossing a
// partitioned link is such a silent loss.
func (n *Network) Send(dg Datagram) error {
	if len(dg.Data) > MaxDatagram {
		return ErrTooBig
	}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return ErrClosed
	}
	if n.down {
		n.mu.Unlock()
		return ErrNetDown
	}
	ep, ok := n.eps[dg.Dst.Host]
	if !ok {
		n.mu.Unlock()
		return fmt.Errorf("%w: %v", ErrNoHost, dg.Dst)
	}
	if _, cut := n.cuts[link(dg.Src.Host, dg.Dst.Host)]; cut {
		n.mu.Unlock()
		return nil // lost at the cut
	}
	if n.loss > 0 && n.rng.Float64() < n.loss {
		n.mu.Unlock()
		return nil // lost in transit
	}
	// Reordering: hold this datagram back and release it after the
	// next one passes through.
	var toDeliver []delivery
	if n.held != nil {
		heldEp := n.eps[n.held.Dst.Host]
		if _, cut := n.cuts[link(n.held.Src.Host, n.held.Dst.Host)]; cut {
			heldEp = nil // the link was cut while the datagram was held
		}
		toDeliver = append(toDeliver, delivery{ep, dg})
		if heldEp != nil {
			toDeliver = append(toDeliver, delivery{heldEp, *n.held})
		}
		n.held = nil
	} else if n.reorder > 0 && n.rng.Float64() < n.reorder {
		held := dg
		n.held = &held
		n.mu.Unlock()
		return nil
	} else {
		toDeliver = append(toDeliver, delivery{ep, dg})
	}
	delay := n.latency
	if n.jitter > 0 {
		delay += time.Duration(n.rng.Int63n(int64(n.jitter)))
	}
	n.mu.Unlock()

	for _, d := range toDeliver {
		n.deliver(d, delay)
	}
	return nil
}

type delivery struct {
	ep Endpoint
	dg Datagram
}

func (n *Network) deliver(d delivery, delay time.Duration) {
	if delay <= 0 {
		d.ep.DeliverDatagram(d.dg)
		return
	}
	n.mu.Lock()
	if n.closed {
		// Racing a concurrent Close: the network vanished with the
		// datagram in flight, an ordinary silent loss.
		n.mu.Unlock()
		return
	}
	if n.fab == nil {
		n.fab = newFabric()
	}
	n.fab.enqueue(d.ep, d.dg, delay)
	n.mu.Unlock()
}

// Flush releases any datagram currently held back for reordering.
// The kernel calls it when a socket closes so no datagram is stranded.
func (n *Network) Flush() {
	n.mu.Lock()
	held := n.held
	n.held = nil
	var ep Endpoint
	if held != nil {
		ep = n.eps[held.Dst.Host]
	}
	n.mu.Unlock()
	if held != nil && ep != nil {
		ep.DeliverDatagram(*held)
	}
}

// Close shuts the network down, flushes every delayed datagram still
// parked in the delivery fabric's timer wheel (in due order), and
// waits for those deliveries to finish, so no goroutine outlives the
// simulation.
func (n *Network) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	n.held = nil
	fb := n.fab
	n.fab = nil
	n.mu.Unlock()
	if fb != nil {
		fb.close()
	}
}
