package netsim

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

// sink is a test endpoint that records delivered datagrams.
type sink struct {
	mu  sync.Mutex
	dgs []Datagram
}

func (s *sink) DeliverDatagram(dg Datagram) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.dgs = append(s.dgs, dg)
}

func (s *sink) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.dgs)
}

func (s *sink) payloads() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, len(s.dgs))
	for i, d := range s.dgs {
		out[i] = string(d.Data)
	}
	return out
}

func dg(dstHost uint32, data string) Datagram {
	return Datagram{
		Src:  Addr{Net: "ether0", Host: 1, Port: 100},
		Dst:  Addr{Net: "ether0", Host: dstHost, Port: 200},
		Data: []byte(data),
	}
}

func TestReliableDelivery(t *testing.T) {
	n := New("ether0")
	s := &sink{}
	if err := n.Attach(2, s); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := n.Send(dg(2, "m")); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.count(); got != 10 {
		t.Fatalf("delivered %d, want 10", got)
	}
}

func TestOrderPreservedWithoutReordering(t *testing.T) {
	n := New("ether0")
	s := &sink{}
	if err := n.Attach(2, s); err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "b", "c", "d"}
	for _, m := range want {
		if err := n.Send(dg(2, m)); err != nil {
			t.Fatal(err)
		}
	}
	got := s.payloads()
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order broken: got %v", got)
		}
	}
}

func TestUnknownHost(t *testing.T) {
	n := New("ether0")
	if err := n.Send(dg(9, "x")); !errors.Is(err, ErrNoHost) {
		t.Fatalf("err = %v, want ErrNoHost", err)
	}
}

func TestOversizeDatagram(t *testing.T) {
	n := New("ether0")
	s := &sink{}
	if err := n.Attach(2, s); err != nil {
		t.Fatal(err)
	}
	big := Datagram{Dst: Addr{Host: 2}, Data: make([]byte, MaxDatagram+1)}
	if err := n.Send(big); !errors.Is(err, ErrTooBig) {
		t.Fatalf("err = %v, want ErrTooBig", err)
	}
}

func TestDoubleAttach(t *testing.T) {
	n := New("ether0")
	if err := n.Attach(2, &sink{}); err != nil {
		t.Fatal(err)
	}
	if err := n.Attach(2, &sink{}); !errors.Is(err, ErrAttached) {
		t.Fatalf("err = %v, want ErrAttached", err)
	}
}

func TestDetach(t *testing.T) {
	n := New("ether0")
	s := &sink{}
	if err := n.Attach(2, s); err != nil {
		t.Fatal(err)
	}
	n.Detach(2)
	if err := n.Send(dg(2, "x")); !errors.Is(err, ErrNoHost) {
		t.Fatalf("err = %v, want ErrNoHost", err)
	}
}

func TestLossDropsSome(t *testing.T) {
	n := New("ether0", WithLoss(0.5), WithSeed(42))
	s := &sink{}
	if err := n.Attach(2, s); err != nil {
		t.Fatal(err)
	}
	const total = 1000
	for i := 0; i < total; i++ {
		if err := n.Send(dg(2, "m")); err != nil {
			t.Fatal(err)
		}
	}
	got := s.count()
	if got == 0 || got == total {
		t.Fatalf("delivered %d of %d; expected partial loss", got, total)
	}
	if got < total/4 || got > 3*total/4 {
		t.Fatalf("delivered %d of %d; far from configured 50%% loss", got, total)
	}
}

func TestLossDeterministicWithSeed(t *testing.T) {
	run := func() []string {
		n := New("ether0", WithLoss(0.3), WithSeed(7))
		s := &sink{}
		if err := n.Attach(2, s); err != nil {
			t.Fatal(err)
		}
		msgs := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
		for _, m := range msgs {
			if err := n.Send(dg(2, m)); err != nil {
				t.Fatal(err)
			}
		}
		return s.payloads()
	}
	r1, r2 := run(), run()
	if len(r1) != len(r2) {
		t.Fatalf("non-deterministic loss: %v vs %v", r1, r2)
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("non-deterministic loss: %v vs %v", r1, r2)
		}
	}
}

func TestReorderSwapsAdjacent(t *testing.T) {
	// With reorder probability 1, every datagram is held and released
	// behind its successor, so pairs arrive swapped.
	n := New("ether0", WithReorder(1), WithSeed(1))
	s := &sink{}
	if err := n.Attach(2, s); err != nil {
		t.Fatal(err)
	}
	for _, m := range []string{"a", "b", "c", "d"} {
		if err := n.Send(dg(2, m)); err != nil {
			t.Fatal(err)
		}
	}
	got := s.payloads()
	want := []string{"b", "a", "d", "c"}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestFlushReleasesHeldDatagram(t *testing.T) {
	n := New("ether0", WithReorder(1), WithSeed(1))
	s := &sink{}
	if err := n.Attach(2, s); err != nil {
		t.Fatal(err)
	}
	if err := n.Send(dg(2, "only")); err != nil {
		t.Fatal(err)
	}
	if s.count() != 0 {
		t.Fatal("datagram should be held for reordering")
	}
	n.Flush()
	if s.count() != 1 {
		t.Fatal("Flush did not release held datagram")
	}
}

func TestLatencyDelaysDelivery(t *testing.T) {
	n := New("ether0", WithLatency(20*time.Millisecond, 0))
	s := &sink{}
	if err := n.Attach(2, s); err != nil {
		t.Fatal(err)
	}
	if err := n.Send(dg(2, "x")); err != nil {
		t.Fatal(err)
	}
	if s.count() != 0 {
		t.Fatal("delivered synchronously despite latency")
	}
	deadline := time.Now().Add(2 * time.Second)
	for s.count() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("datagram never delivered")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestCloseWaitsForPendingAndRejectsSends(t *testing.T) {
	n := New("ether0", WithLatency(10*time.Millisecond, 0))
	s := &sink{}
	if err := n.Attach(2, s); err != nil {
		t.Fatal(err)
	}
	if err := n.Send(dg(2, "x")); err != nil {
		t.Fatal(err)
	}
	n.Close()
	if s.count() != 1 {
		t.Fatal("Close returned before pending delivery completed")
	}
	if err := n.Send(dg(2, "y")); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	if err := n.Attach(3, s); !errors.Is(err, ErrClosed) {
		t.Fatalf("Attach err = %v, want ErrClosed", err)
	}
	n.Close() // idempotent
}

func TestNoLossDeliversEverything(t *testing.T) {
	f := func(payloads [][]byte) bool {
		n := New("e")
		s := &sink{}
		if err := n.Attach(1, s); err != nil {
			return false
		}
		sent := 0
		for _, p := range payloads {
			if len(p) > MaxDatagram {
				continue
			}
			if err := n.Send(Datagram{Dst: Addr{Host: 1}, Data: p}); err != nil {
				return false
			}
			sent++
		}
		return s.count() == sent
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSrcNamePropagates(t *testing.T) {
	n := New("ether0")
	s := &sink{}
	if err := n.Attach(2, s); err != nil {
		t.Fatal(err)
	}
	d := dg(2, "x")
	d.SrcName = "red:1234"
	if err := n.Send(d); err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dgs[0].SrcName != "red:1234" {
		t.Fatalf("SrcName = %q", s.dgs[0].SrcName)
	}
}

func TestAddrString(t *testing.T) {
	a := Addr{Net: "ether0", Host: 5, Port: 99}
	if got := a.String(); got != "ether0/5:99" {
		t.Fatalf("String() = %q", got)
	}
}

func TestPartitionDropsDatagrams(t *testing.T) {
	n := New("ether0")
	s2, s3 := &sink{}, &sink{}
	if err := n.Attach(1, &sink{}); err != nil {
		t.Fatal(err)
	}
	if err := n.Attach(2, s2); err != nil {
		t.Fatal(err)
	}
	if err := n.Attach(3, s3); err != nil {
		t.Fatal(err)
	}
	n.Partition(1, 2)
	if !n.Reachable(1, 3) {
		t.Fatal("1-3 should be unaffected by the 1-2 cut")
	}
	if n.Reachable(1, 2) || n.Reachable(2, 1) {
		t.Fatal("cut link still reachable")
	}
	// Across the cut: silently lost, no sender-visible error.
	if err := n.Send(dg(2, "cut")); err != nil {
		t.Fatalf("send across partition errored: %v", err)
	}
	// Around the cut: delivered.
	if err := n.Send(dg(3, "ok")); err != nil {
		t.Fatal(err)
	}
	if s2.count() != 0 || s3.count() != 1 {
		t.Fatalf("delivered %d/%d, want 0/1", s2.count(), s3.count())
	}
	n.Heal()
	if !n.Reachable(1, 2) {
		t.Fatal("heal did not restore the link")
	}
	if err := n.Send(dg(2, "healed")); err != nil {
		t.Fatal(err)
	}
	if s2.count() != 1 {
		t.Fatalf("post-heal delivery count = %d, want 1", s2.count())
	}
}

func TestPartitionNetsSplitsGroups(t *testing.T) {
	n := New("ether0")
	sinks := map[uint32]*sink{}
	for _, h := range []uint32{1, 2, 3, 4} {
		sinks[h] = &sink{}
		if err := n.Attach(h, sinks[h]); err != nil {
			t.Fatal(err)
		}
	}
	n.PartitionNets([]uint32{1, 2}, []uint32{3, 4})
	for _, pair := range [][2]uint32{{1, 3}, {1, 4}, {2, 3}, {2, 4}} {
		if n.Reachable(pair[0], pair[1]) {
			t.Fatalf("%v reachable across the split", pair)
		}
	}
	for _, pair := range [][2]uint32{{1, 2}, {3, 4}} {
		if !n.Reachable(pair[0], pair[1]) {
			t.Fatalf("%v cut within its own side", pair)
		}
	}
}

func TestSetLinkDownAndRestore(t *testing.T) {
	n := New("ether0")
	s := &sink{}
	if err := n.Attach(2, s); err != nil {
		t.Fatal(err)
	}
	n.SetLinkDown(1, 2, true)
	if err := n.Send(dg(2, "x")); err != nil {
		t.Fatal(err)
	}
	if s.count() != 0 {
		t.Fatal("datagram crossed a downed link")
	}
	n.SetLinkDown(1, 2, false)
	if err := n.Send(dg(2, "y")); err != nil {
		t.Fatal(err)
	}
	if s.count() != 1 {
		t.Fatal("restored link does not deliver")
	}
}

func TestSetDownWholeNetwork(t *testing.T) {
	n := New("ether0")
	s := &sink{}
	if err := n.Attach(2, s); err != nil {
		t.Fatal(err)
	}
	n.SetDown(true)
	if err := n.Send(dg(2, "x")); !errors.Is(err, ErrNetDown) {
		t.Fatalf("send on downed network: %v, want ErrNetDown", err)
	}
	if n.Reachable(1, 2) {
		t.Fatal("downed network reports reachable")
	}
	n.Heal()
	if err := n.Send(dg(2, "y")); err != nil {
		t.Fatal(err)
	}
	if s.count() != 1 {
		t.Fatal("healed network does not deliver")
	}
}

func TestHeldDatagramDroppedIfLinkCutWhileHeld(t *testing.T) {
	// A datagram held back for reordering whose link is cut before the
	// next send must not leak across the partition.
	n := New("ether0", WithReorder(1.0), WithSeed(7))
	s := &sink{}
	if err := n.Attach(2, s); err != nil {
		t.Fatal(err)
	}
	if err := n.Send(dg(2, "held")); err != nil { // held back
		t.Fatal(err)
	}
	n.Partition(1, 2)
	n.SetLinkDown(1, 2, false) // reopen so the trigger datagram flows
	if err := n.Send(dg(2, "trigger")); err != nil {
		t.Fatal(err)
	}
	// Re-cut, re-run with the cut active at release time.
	n.Heal()
	if err := n.Send(dg(2, "held2")); err != nil {
		t.Fatal(err)
	}
	n.Partition(1, 2)
	// The trigger itself is cut too: both lost.
	if err := n.Send(dg(2, "trigger2")); err != nil {
		t.Fatal(err)
	}
	for _, p := range s.payloads() {
		if p == "held2" || p == "trigger2" {
			t.Fatalf("datagram %q crossed an active partition", p)
		}
	}
}
