package obs

import (
	"testing"
	"time"
)

// The record-path costs quoted in docs/observability.md come from
// these benchmarks. All three paths are a single atomic RMW (plus a
// bits.Len64 for the histogram bucket); none allocates — the
// AllocsPerRun gates in obs_test.go enforce that separately.

func BenchmarkCounterAdd(b *testing.B) {
	var c Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkGaugeSetMax(b *testing.B) {
	var g Gauge
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.SetMax(int64(i & 1023))
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}

func BenchmarkSpan(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := StartSpan(&h)
		sp.End()
	}
}

func BenchmarkSnapshot(b *testing.B) {
	r := NewRegistry()
	for _, n := range []string{"a.one", "a.two", "b.one", "b.two"} {
		r.Counter(n).Add(7)
		r.Histogram("h." + n).Observe(int64(len(n)) * int64(time.Microsecond))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = r.Snapshot()
	}
}
