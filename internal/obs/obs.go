// Package obs is the monitor's self-observation layer: a metrics
// registry of atomic counters, gauges, and log-bucketed latency
// histograms, plus the snapshot machinery that carries them over the
// daemon wire and into forensic files. The monitor of the paper
// observes other programs; at production scale it must also expose its
// own queue depths, flush latencies, and drop rates on every machine,
// or the filter pipeline, store, and query engine cannot be tuned.
//
// The record paths — Counter.Add, Gauge.Set, Histogram.Observe — are
// single atomic operations performing zero heap allocations, so every
// hot path in the system (the filter's per-batch flush, the store's
// per-append framing, the kernel's per-message metering) can be
// instrumented without measurable cost; testing.AllocsPerRun gates in
// obs_test.go keep it that way. Metric handles are resolved once, at
// construction time, through the registry's get-or-create lookups;
// nothing resolves names on a hot path.
//
// Each simulated machine owns one Registry (kernel.Machine.Obs), so a
// cluster's metrics stay attributable per machine and the daemon's
// TStatsReq handler can answer for exactly its own node. Snapshots of
// different machines merge (histograms bucket-wise), which is how the
// controller's stats command renders a cluster-wide report.
package obs

import (
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing event count. The zero value is
// ready to use.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current count.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is an instantaneous level — a queue depth, a high-water mark.
// The zero value is ready to use.
type Gauge struct{ v atomic.Int64 }

// Set records the current level.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the level by n and returns the new level, so callers can
// maintain a companion high-water gauge without a second load.
func (g *Gauge) Add(n int64) int64 { return g.v.Add(n) }

// SetMax raises the gauge to v if v exceeds the current level — the
// lock-free high-water update.
func (g *Gauge) SetMax(v int64) {
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Load returns the current level.
func (g *Gauge) Load() int64 { return g.v.Load() }

// NumBuckets is the fixed bucket count of a Histogram: bucket k holds
// observations v with bitlen(v) == k, i.e. v in [2^(k-1), 2^k), with
// bucket 0 holding v <= 0 and the last bucket absorbing everything
// wider. Power-of-two buckets keep Observe branch-free and make
// histograms from different machines merge by bucket-wise addition.
const NumBuckets = 64

// Histogram is a log-bucketed distribution, conventionally of
// latencies in nanoseconds (the rendering assumes so). The zero value
// is ready to use.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [NumBuckets]atomic.Int64
}

// bucketOf maps an observation to its bucket index.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	b := bits.Len64(uint64(v))
	if b >= NumBuckets {
		return NumBuckets - 1
	}
	return b
}

// Observe folds one value into the distribution.
func (h *Histogram) Observe(v int64) {
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketOf(v)].Add(1)
}

// Since observes the nanoseconds elapsed from start — the usual way a
// latency lands in a histogram:
//
//	t0 := time.Now()
//	...
//	h.Since(t0)
func (h *Histogram) Since(start time.Time) { h.Observe(int64(time.Since(start))) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Span is an in-flight timed region. It is a value, so starting and
// ending a span allocates nothing.
type Span struct {
	h     *Histogram
	start time.Time
}

// StartSpan begins timing a region that will end in h.
func StartSpan(h *Histogram) Span { return Span{h: h, start: time.Now()} }

// End observes the span's elapsed time. A zero Span is a no-op, so a
// caller holding an optional histogram can time unconditionally.
func (s Span) End() {
	if s.h != nil {
		s.h.Observe(int64(time.Since(s.start)))
	}
}

// Registry is a named collection of metrics. Lookups are get-or-create
// and return stable pointers: two callers asking for the same name
// share the metric, which is what lets several filters on one machine
// aggregate into one per-machine vocabulary. Lookups take a mutex —
// resolve handles at construction time, not on hot paths.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	sections map[string]sectionSource
}

type sectionSource struct {
	version uint16
	capture func() []byte
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		sections: make(map[string]sectionSource),
	}
}

// defaultRegistry is the process-wide registry, for instrumentation
// with no better home. Simulated-cluster code should prefer the
// per-machine registries so stats stay attributable.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = new(Counter)
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = new(Gauge)
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = new(Histogram)
		r.hists[name] = h
	}
	return h
}

// RegisterSection installs a section provider: capture is called at
// every Snapshot and its bytes become the section's payload (a nil
// return skips the section for that snapshot). Registering the same
// name again replaces the provider — a restarted filter re-registers
// its live-analysis sections without leaking the dead collector's.
func (r *Registry) RegisterSection(name string, version uint16, capture func() []byte) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sections[name] = sectionSource{version: version, capture: capture}
}

// Snapshot captures every metric's current value, with names sorted,
// as the wire- and file-portable form of the registry.
func (r *Registry) Snapshot() *Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := &Snapshot{TakenUnixNano: time.Now().UnixNano()}
	// Sections capture first: a section source may flush buffered state
	// into its registry metrics as part of capturing (the live
	// collector publishes its gauges then), and the counter and gauge
	// passes below should see the result, not last flush's values.
	for name, src := range r.sections {
		if data := src.capture(); data != nil {
			s.Sections = append(s.Sections, Section{Name: name, Version: src.version, Data: data})
		}
	}
	for name, c := range r.counters {
		s.Counters = append(s.Counters, NamedValue{Name: name, Value: c.Load()})
	}
	for name, g := range r.gauges {
		s.Gauges = append(s.Gauges, NamedValue{Name: name, Value: g.Load()})
	}
	for name, h := range r.hists {
		hv := HistValue{Name: name, Count: h.count.Load(), Sum: h.sum.Load()}
		for i := range h.buckets {
			if n := h.buckets[i].Load(); n != 0 {
				hv.Buckets = append(hv.Buckets, BucketCount{Bucket: uint8(i), Count: n})
			}
		}
		s.Hists = append(s.Hists, hv)
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Hists, func(i, j int) bool { return s.Hists[i].Name < s.Hists[j].Name })
	sort.Slice(s.Sections, func(i, j int) bool { return s.Sections[i].Name < s.Sections[j].Name })
	return s
}
