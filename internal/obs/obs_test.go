package obs

import (
	"testing"
	"time"
)

// The record paths are the whole point of this package: a counter add,
// a gauge set, and a histogram observe must not touch the heap, or the
// filter hot path cannot afford them. These gates are the acceptance
// criterion for the instrumentation layer.

func TestRecordPathsZeroAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test.counter")
	g := r.Gauge("test.gauge")
	h := r.Histogram("test.hist")

	if n := testing.AllocsPerRun(200, func() { c.Add(3) }); n != 0 {
		t.Fatalf("Counter.Add allocates %v per op, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() { c.Inc() }); n != 0 {
		t.Fatalf("Counter.Inc allocates %v per op, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() { g.Set(42) }); n != 0 {
		t.Fatalf("Gauge.Set allocates %v per op, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() { g.SetMax(7) }); n != 0 {
		t.Fatalf("Gauge.SetMax allocates %v per op, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() { h.Observe(12345) }); n != 0 {
		t.Fatalf("Histogram.Observe allocates %v per op, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		s := StartSpan(h)
		s.End()
	}); n != 0 {
		t.Fatalf("Span start/end allocates %v per op, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		var s Span // optional histogram absent: still free
		s.End()
	}); n != 0 {
		t.Fatalf("nil Span.End allocates %v per op, want 0", n)
	}
}

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Add(5)
	c.Inc()
	if got := c.Load(); got != 6 {
		t.Fatalf("counter = %d, want 6", got)
	}
	if r.Counter("c") != c {
		t.Fatal("get-or-create returned a different counter pointer")
	}

	g := r.Gauge("g")
	g.Set(10)
	g.Add(-3)
	if got := g.Load(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
	g.SetMax(5)
	if got := g.Load(); got != 7 {
		t.Fatalf("SetMax lowered gauge to %d", got)
	}
	g.SetMax(20)
	if got := g.Load(); got != 20 {
		t.Fatalf("SetMax(20) left gauge at %d", got)
	}
}

func TestBucketOf(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1023, 10}, {1024, 11},
		{int64(^uint64(0) >> 1), NumBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	// 90 fast observations around 1000ns, 10 slow around 1ms.
	for i := 0; i < 90; i++ {
		h.Observe(1000)
	}
	for i := 0; i < 10; i++ {
		h.Observe(1_000_000)
	}
	hv := r.Snapshot().Hist("lat")
	if hv == nil {
		t.Fatal("histogram missing from snapshot")
	}
	if hv.Count != 100 {
		t.Fatalf("count = %d, want 100", hv.Count)
	}
	// p50 must land in the 1000ns bucket: upper bound 2^11-1 = 2047.
	if p50 := hv.Quantile(0.50); p50 < 1000 || p50 > 2047 {
		t.Fatalf("p50 = %d, want within [1000, 2047]", p50)
	}
	// p99 must land in the 1ms bucket: 2^20-1 = 1048575.
	if p99 := hv.Quantile(0.99); p99 < 1_000_000 || p99 > 1_048_575 {
		t.Fatalf("p99 = %d, want within [1000000, 1048575]", p99)
	}
	if m := hv.Mean(); m < 100_000 || m > 110_000 {
		t.Fatalf("mean = %d, want ~100900", m)
	}
}

func TestHistogramSince(t *testing.T) {
	var h Histogram
	h.Since(time.Now().Add(-time.Millisecond))
	if h.Count() != 1 {
		t.Fatalf("count = %d, want 1", h.Count())
	}
	if h.sum.Load() < int64(time.Millisecond) {
		t.Fatalf("sum = %d, want >= 1ms", h.sum.Load())
	}
}

func TestSnapshotSortedAndComplete(t *testing.T) {
	r := NewRegistry()
	r.Counter("z.last").Add(1)
	r.Counter("a.first").Add(2)
	r.Gauge("depth").Set(4)
	r.Histogram("h").Observe(100)

	s := r.Snapshot()
	if len(s.Counters) != 2 || s.Counters[0].Name != "a.first" || s.Counters[1].Name != "z.last" {
		t.Fatalf("counters not sorted: %+v", s.Counters)
	}
	if v, ok := s.Get("depth"); !ok || v != 4 {
		t.Fatalf("Get(depth) = %d, %v", v, ok)
	}
	if _, ok := s.Get("missing"); ok {
		t.Fatal("Get(missing) reported present")
	}
	if s.TakenUnixNano == 0 {
		t.Fatal("snapshot has no timestamp")
	}
}
