package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// Section is an opaque, versioned payload a subsystem attaches to a
// snapshot — the escape hatch for structured state (a live
// communication matrix, parallelism intervals) that does not reduce to
// flat counters yet must ride the same snapshot plumbing: the daemon's
// TStatsReq answer, the controller's cluster-wide merge, forensic JSON
// files, cmd/dpstat. The snapshot machinery never interprets Data; a
// subsystem that understands the Name registers a merger and a
// renderer for it. Unknown or newer-versioned sections are carried
// through untouched, so an old controller can still relay a new
// daemon's sections to a new dpstat.
type Section struct {
	Name    string `json:"name"`
	Version uint16 `json:"version"`
	Data    []byte `json:"data"` // base64 in the JSON form
}

// SectionMerger combines two payloads of the same section name and
// version into one. It must be associative and commutative on payload
// multisets — the same contract Snapshot.Merge gives counters — so
// per-machine snapshots fold in any order. A merger that cannot make
// sense of a payload returns an error; the merge then keeps both
// inputs verbatim rather than corrupting or dropping state.
type SectionMerger func(a, b []byte) ([]byte, error)

// SectionRenderer writes a human-readable report of one section to w
// (used by Snapshot.Render, which serves controller stats and dpmon).
type SectionRenderer func(w io.Writer, s *Section)

var (
	sectionMu        sync.RWMutex
	sectionMergers   = map[string]SectionMerger{}
	sectionRenderers = map[string]SectionRenderer{}
)

// RegisterSectionMerger installs the merger for a section name,
// replacing any previous one. Typically called from the owning
// package's init so every binary that links it can merge its sections.
func RegisterSectionMerger(name string, fn SectionMerger) {
	sectionMu.Lock()
	defer sectionMu.Unlock()
	sectionMergers[name] = fn
}

// RegisterSectionRenderer installs the renderer for a section name,
// replacing any previous one.
func RegisterSectionRenderer(name string, fn SectionRenderer) {
	sectionMu.Lock()
	defer sectionMu.Unlock()
	sectionRenderers[name] = fn
}

func sectionMerger(name string) SectionMerger {
	sectionMu.RLock()
	defer sectionMu.RUnlock()
	return sectionMergers[name]
}

func sectionRenderer(name string) SectionRenderer {
	sectionMu.RLock()
	defer sectionMu.RUnlock()
	return sectionRenderers[name]
}

// Section returns the first section with the given name, nil when
// absent.
func (s *Snapshot) Section(name string) *Section {
	for i := range s.Sections {
		if s.Sections[i].Name == name {
			return &s.Sections[i]
		}
	}
	return nil
}

// mergeSections folds two section lists. Sections group by (name,
// version); groups with a registered merger fold pairwise, and groups
// without one — or whose merger fails — keep every entry verbatim
// (multiset union), which is still associative and commutative, so a
// controller older than a section's producer degrades to relaying
// instead of breaking the whole merge. The result is sorted by name,
// version, then payload for deterministic output.
func mergeSections(a, b []Section) []Section {
	if len(a) == 0 && len(b) == 0 {
		return nil
	}
	type key struct {
		name    string
		version uint16
	}
	groups := make(map[key][][]byte, len(a)+len(b))
	for _, list := range [2][]Section{a, b} {
		for _, s := range list {
			k := key{s.Name, s.Version}
			groups[k] = append(groups[k], s.Data)
		}
	}
	out := make([]Section, 0, len(groups))
	for k, payloads := range groups {
		// Fold in a deterministic order so a merger that is not
		// perfectly commutative still cannot make merge results
		// depend on snapshot arrival order.
		sort.Slice(payloads, func(i, j int) bool { return string(payloads[i]) < string(payloads[j]) })
		fn := sectionMerger(k.name)
		if fn != nil {
			merged := payloads[0]
			ok := true
			for _, p := range payloads[1:] {
				m, err := fn(merged, p)
				if err != nil {
					ok = false
					break
				}
				merged = m
			}
			if ok {
				out = append(out, Section{Name: k.name, Version: k.version, Data: merged})
				continue
			}
		}
		for _, p := range payloads {
			out = append(out, Section{Name: k.name, Version: k.version, Data: p})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		if out[i].Version != out[j].Version {
			return out[i].Version < out[j].Version
		}
		return string(out[i].Data) < string(out[j].Data)
	})
	return out
}

// renderSections writes each section through its registered renderer,
// falling back to a one-line size note for unknown names so a report
// never hides that state arrived.
func renderSections(w io.Writer, sections []Section) {
	for i := range sections {
		s := &sections[i]
		if fn := sectionRenderer(s.Name); fn != nil {
			fn(w, s)
			continue
		}
		fmt.Fprintf(w, "section %s v%d: %d bytes (no renderer linked)\n", s.Name, s.Version, len(s.Data))
	}
}
