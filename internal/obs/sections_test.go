package obs

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"reflect"
	"strings"
	"testing"
)

// TestSectionBinaryRoundTrip pins the v2 wire format: sections survive
// marshal/parse byte-exactly, and a v1 consumer's view (no sections)
// still parses everything before them.
func TestSectionBinaryRoundTrip(t *testing.T) {
	s := &Snapshot{
		Machine:  "m1",
		Counters: []NamedValue{{Name: "c", Value: 7}},
		Sections: []Section{
			{Name: "alpha", Version: 1, Data: []byte{1, 2, 3}},
			{Name: "beta", Version: 3, Data: nil},
		},
	}
	got, err := ParseSnapshot(s.MarshalBinary())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Sections) != 2 || got.Sections[0].Name != "alpha" || got.Sections[1].Version != 3 {
		t.Fatalf("sections: %+v", got.Sections)
	}
	if !bytes.Equal(got.Sections[0].Data, []byte{1, 2, 3}) || len(got.Sections[1].Data) != 0 {
		t.Fatalf("section data: %+v", got.Sections)
	}
}

// TestSectionJSONRoundTrip checks the JSON form carries sections too
// (payload bytes base64-encoded by encoding/json).
func TestSectionJSONRoundTrip(t *testing.T) {
	s := &Snapshot{Sections: []Section{{Name: "alpha", Version: 2, Data: []byte("payload")}}}
	got, err := ParseSnapshotJSON(s.EncodeJSON())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Sections, s.Sections) {
		t.Fatalf("json sections: %+v", got.Sections)
	}
}

// TestSectionMergeUnregistered checks the default merge: with no
// merger registered, both payloads are carried (multiset union), and
// identical entries are still both kept — counts are meaningful.
func TestSectionMergeUnregistered(t *testing.T) {
	a := &Snapshot{Sections: []Section{{Name: "test.opaque", Version: 1, Data: []byte{1}}}}
	b := &Snapshot{Sections: []Section{
		{Name: "test.opaque", Version: 1, Data: []byte{2}},
		{Name: "test.opaque", Version: 2, Data: []byte{9}},
	}}
	a.Merge(b)
	if len(a.Sections) != 3 {
		t.Fatalf("union merge: %+v", a.Sections)
	}
}

// TestSectionMergeRegistered registers a summing merger and checks
// same-version payloads fold while other versions stay separate.
func TestSectionMergeRegistered(t *testing.T) {
	RegisterSectionMerger("test.sum", func(x, y []byte) ([]byte, error) {
		if len(x) != 1 || len(y) != 1 {
			return nil, errors.New("bad payload")
		}
		return []byte{x[0] + y[0]}, nil
	})
	a := &Snapshot{Sections: []Section{{Name: "test.sum", Version: 1, Data: []byte{3}}}}
	b := &Snapshot{Sections: []Section{
		{Name: "test.sum", Version: 1, Data: []byte{4}},
		{Name: "test.sum", Version: 2, Data: []byte{50}},
	}}
	a.Merge(b)
	if len(a.Sections) != 2 {
		t.Fatalf("merge: %+v", a.Sections)
	}
	if s := a.Section("test.sum"); s == nil || s.Version != 1 || !bytes.Equal(s.Data, []byte{7}) {
		t.Fatalf("folded section: %+v", s)
	}

	// A failing merger degrades to keeping both payloads.
	c := &Snapshot{Sections: []Section{{Name: "test.sum", Version: 1, Data: []byte{1}}}}
	d := &Snapshot{Sections: []Section{{Name: "test.sum", Version: 1, Data: []byte{2, 2}}}} // trips the merger
	c.Merge(d)
	if len(c.Sections) != 2 {
		t.Fatalf("failed merge must keep both: %+v", c.Sections)
	}
}

// TestSectionRenderFallback checks a section with no registered
// renderer prints the opaque one-liner instead of nothing.
func TestSectionRenderFallback(t *testing.T) {
	s := &Snapshot{Sections: []Section{{Name: "test.nobody", Version: 4, Data: []byte{1, 2, 3, 4, 5}}}}
	var out strings.Builder
	s.Render(&out)
	if !strings.Contains(out.String(), "section test.nobody v4: 5 bytes") {
		t.Fatalf("render: %q", out.String())
	}
}

// TestRegistrySectionCapture checks Registry.RegisterSection: captures
// run at snapshot time, nil captures are skipped, and re-registering a
// name (a restarted provider) replaces the old capture.
func TestRegistrySectionCapture(t *testing.T) {
	r := NewRegistry()
	n := 0
	r.RegisterSection("test.live", 1, func() []byte { n++; return []byte{byte(n)} })
	r.RegisterSection("test.dead", 1, func() []byte { return nil })
	s := r.Snapshot()
	if len(s.Sections) != 1 || s.Sections[0].Name != "test.live" || !bytes.Equal(s.Sections[0].Data, []byte{1}) {
		t.Fatalf("snapshot sections: %+v", s.Sections)
	}
	r.RegisterSection("test.live", 2, func() []byte { return []byte{99} })
	s = r.Snapshot()
	if len(s.Sections) != 1 || s.Sections[0].Version != 2 || !bytes.Equal(s.Sections[0].Data, []byte{99}) {
		t.Fatalf("replaced section: %+v", s.Sections)
	}
}

// TestSectionParseCorrupt pins parser behavior on the fuzz corpus
// shapes: truncated section blocks and oversized counts error out
// cleanly instead of panicking or over-allocating.
func TestSectionParseCorrupt(t *testing.T) {
	s := &Snapshot{Sections: []Section{{Name: "alpha", Version: 1, Data: []byte{1, 2, 3, 4}}}}
	good := s.MarshalBinary()
	for cut := 1; cut < 12; cut++ {
		if _, err := ParseSnapshot(good[:len(good)-cut]); err == nil {
			t.Fatalf("truncated by %d parsed", cut)
		}
	}
	// Corrupt the section count to a huge value.
	bad := append([]byte(nil), good...)
	// The section count is the u32 right after the (empty) counters,
	// gauges, hists blocks; find it by re-marshalling a sectionless
	// snapshot and measuring the prefix.
	prefix := len((&Snapshot{}).MarshalBinary()) - 4
	copy(bad[prefix:], []byte{0xff, 0xff, 0xff, 0xff})
	if _, err := ParseSnapshot(bad); err == nil {
		t.Fatal("oversized section count parsed")
	}
}

func fuzzSeedSnapshots() [][]byte {
	seeds := [][]byte{
		(&Snapshot{Machine: "m0", Counters: []NamedValue{{Name: "c", Value: 1}}}).MarshalBinary(),
		(&Snapshot{Sections: []Section{
			{Name: "live.comm", Version: 1, Data: []byte{1, 0, 0, 0, 0, 0, 0, 0}},
			{Name: "live.par", Version: 9, Data: []byte("future opaque payload")},
		}}).MarshalBinary(),
	}
	// A truncated section block.
	whole := (&Snapshot{Sections: []Section{{Name: "live.match", Version: 1, Data: make([]byte, 40)}}}).MarshalBinary()
	seeds = append(seeds, whole[:len(whole)-17])
	// A corrupt matrix entry: a live.comm section whose table count
	// promises more entries than the payload holds.
	seeds = append(seeds, (&Snapshot{Sections: []Section{
		{Name: "live.comm", Version: 1, Data: bytes.Repeat([]byte{0xff}, 48)},
	}}).MarshalBinary())
	return seeds
}

// FuzzParseSnapshot hammers the binary parser: arbitrary bytes must
// never panic, and anything that parses must survive a
// marshal/re-parse/merge/render cycle unchanged in metric content.
func FuzzParseSnapshot(f *testing.F) {
	for _, seed := range fuzzSeedSnapshots() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ParseSnapshot(data)
		if err != nil {
			return
		}
		re, err := ParseSnapshot(s.MarshalBinary())
		if err != nil {
			t.Fatalf("re-parse of marshalled snapshot: %v", err)
		}
		s.Render(io.Discard)
		re.Merge(s)
		fmt.Fprint(io.Discard, len(re.Sections))
	})
}
