package obs

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"time"
)

// Snapshot is a point-in-time capture of one registry — the portable
// form of a machine's metrics. It travels over the daemon wire (binary,
// MarshalBinary/ParseSnapshot), lands in forensic files (JSON), and
// merges with snapshots of other machines for cluster-wide reports.
type Snapshot struct {
	// Machine labels the node the snapshot came from; empty on merged
	// snapshots spanning several machines.
	Machine string `json:"machine,omitempty"`
	// TakenUnixNano is when the snapshot was captured (wall clock of
	// the capturing process); a merge keeps the latest.
	TakenUnixNano int64        `json:"taken_unix_nano,omitempty"`
	Counters      []NamedValue `json:"counters"`
	Gauges        []NamedValue `json:"gauges"`
	Hists         []HistValue  `json:"histograms"`
	// Sections carry opaque, versioned subsystem state (see Section).
	Sections []Section `json:"sections,omitempty"`
}

// NamedValue is one counter or gauge reading.
type NamedValue struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// BucketCount is one non-empty histogram bucket: observations v with
// bitlen(v) == Bucket (see NumBuckets).
type BucketCount struct {
	Bucket uint8 `json:"bucket"`
	Count  int64 `json:"count"`
}

// HistValue is one histogram's distribution, buckets stored sparsely
// in ascending bucket order.
type HistValue struct {
	Name    string        `json:"name"`
	Count   int64         `json:"count"`
	Sum     int64         `json:"sum"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// Quantile returns an upper bound for the q'th quantile (0 < q <= 1)
// of the distribution: the top of the log bucket the quantile falls
// in, so the true value is within a factor of two below the returned
// one. The rank is nearest-rank (ceiling), so p99 of a handful of
// observations reads the maximum rather than undershooting it.
// Returns 0 for an empty histogram.
func (h *HistValue) Quantile(q float64) int64 {
	if h.Count <= 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(h.Count)))
	if rank < 1 {
		rank = 1
	}
	if rank > h.Count {
		rank = h.Count
	}
	var cum int64
	for _, b := range h.Buckets {
		cum += b.Count
		if cum >= rank {
			if b.Bucket == 0 {
				return 0
			}
			if int(b.Bucket) >= NumBuckets-1 {
				return int64(^uint64(0) >> 1)
			}
			return (int64(1) << b.Bucket) - 1
		}
	}
	return 0
}

// Mean returns the average observation, 0 when empty.
func (h *HistValue) Mean() int64 {
	if h.Count <= 0 {
		return 0
	}
	return h.Sum / h.Count
}

// Merge folds other into s: counters and gauges sum by name (a merged
// gauge is the cluster total of the level), histograms add bucket-wise
// — the associative, commutative combination that lets the controller
// fold per-machine snapshots in any order. Names absent on one side
// carry over unchanged. The result keeps sorted name order.
func (s *Snapshot) Merge(other *Snapshot) {
	if other == nil {
		return
	}
	if other.TakenUnixNano > s.TakenUnixNano {
		s.TakenUnixNano = other.TakenUnixNano
	}
	if s.Machine != other.Machine {
		s.Machine = ""
	}
	s.Counters = mergeValues(s.Counters, other.Counters)
	s.Gauges = mergeValues(s.Gauges, other.Gauges)
	s.Hists = mergeHists(s.Hists, other.Hists)
	s.Sections = mergeSections(s.Sections, other.Sections)
}

func mergeValues(a, b []NamedValue) []NamedValue {
	byName := make(map[string]int64, len(a)+len(b))
	for _, v := range a {
		byName[v.Name] += v.Value
	}
	for _, v := range b {
		byName[v.Name] += v.Value
	}
	out := make([]NamedValue, 0, len(byName))
	for name, v := range byName {
		out = append(out, NamedValue{Name: name, Value: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func mergeHists(a, b []HistValue) []HistValue {
	byName := make(map[string]*HistValue, len(a)+len(b))
	fold := func(h HistValue) {
		dst, ok := byName[h.Name]
		if !ok {
			cp := HistValue{Name: h.Name, Count: h.Count, Sum: h.Sum}
			cp.Buckets = append(cp.Buckets, h.Buckets...)
			byName[h.Name] = &cp
			return
		}
		dst.Count += h.Count
		dst.Sum += h.Sum
		counts := make(map[uint8]int64, len(dst.Buckets)+len(h.Buckets))
		for _, bc := range dst.Buckets {
			counts[bc.Bucket] += bc.Count
		}
		for _, bc := range h.Buckets {
			counts[bc.Bucket] += bc.Count
		}
		dst.Buckets = dst.Buckets[:0]
		for bucket, n := range counts {
			dst.Buckets = append(dst.Buckets, BucketCount{Bucket: bucket, Count: n})
		}
		sort.Slice(dst.Buckets, func(i, j int) bool { return dst.Buckets[i].Bucket < dst.Buckets[j].Bucket })
	}
	for _, h := range a {
		fold(h)
	}
	for _, h := range b {
		fold(h)
	}
	out := make([]HistValue, 0, len(byName))
	for _, h := range byName {
		out = append(out, *h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Binary snapshot format, version 2. Little-endian throughout:
//
//	"DPOB" magic, u16 version,
//	string machine, i64 takenUnixNano,
//	u32 n counters × (string name, i64 value),
//	u32 n gauges   × (string name, i64 value),
//	u32 n hists    × (string name, i64 count, i64 sum,
//	                  u16 n pairs × (u8 bucket, i64 count)),
//	u32 n sections × (string name, u16 version, u32 len, bytes)   [v2+]
//
// Strings are u16-length-prefixed. A parser ignores any bytes after
// the fields it knows, and accepts versions above its own by reading
// the prefix it understands — future versions extend by appending, the
// same trailing-field discipline as the daemon's wire bodies. Version
// 1 snapshots (pre-section writers) parse as having no sections; a
// section payload's inner format is versioned independently by its
// u16, so a producer can evolve one section without touching the
// snapshot version.

// SnapshotVersion is the binary format version this package writes.
const SnapshotVersion = 2

var snapshotMagic = [4]byte{'D', 'P', 'O', 'B'}

// ErrSnapshotCorrupt reports undecodable snapshot bytes.
var ErrSnapshotCorrupt = errors.New("obs: corrupt snapshot")

// maxSnapshotEntries bounds each section against corrupt counts.
const maxSnapshotEntries = 1 << 20

// MarshalBinary encodes the snapshot in the versioned binary format.
func (s *Snapshot) MarshalBinary() []byte {
	le := binary.LittleEndian
	b := make([]byte, 0, 256)
	b = append(b, snapshotMagic[:]...)
	b = le.AppendUint16(b, SnapshotVersion)
	b = appendString(b, s.Machine)
	b = le.AppendUint64(b, uint64(s.TakenUnixNano))
	b = le.AppendUint32(b, uint32(len(s.Counters)))
	for _, v := range s.Counters {
		b = appendString(b, v.Name)
		b = le.AppendUint64(b, uint64(v.Value))
	}
	b = le.AppendUint32(b, uint32(len(s.Gauges)))
	for _, v := range s.Gauges {
		b = appendString(b, v.Name)
		b = le.AppendUint64(b, uint64(v.Value))
	}
	b = le.AppendUint32(b, uint32(len(s.Hists)))
	for _, h := range s.Hists {
		b = appendString(b, h.Name)
		b = le.AppendUint64(b, uint64(h.Count))
		b = le.AppendUint64(b, uint64(h.Sum))
		b = le.AppendUint16(b, uint16(len(h.Buckets)))
		for _, bc := range h.Buckets {
			b = append(b, bc.Bucket)
			b = le.AppendUint64(b, uint64(bc.Count))
		}
	}
	b = le.AppendUint32(b, uint32(len(s.Sections)))
	for _, sec := range s.Sections {
		b = appendString(b, sec.Name)
		b = le.AppendUint16(b, sec.Version)
		b = le.AppendUint32(b, uint32(len(sec.Data)))
		b = append(b, sec.Data...)
	}
	return b
}

func appendString(b []byte, s string) []byte {
	b = binary.LittleEndian.AppendUint16(b, uint16(len(s)))
	return append(b, s...)
}

// reader is a bounds-checked cursor over snapshot bytes.
type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.off+n > len(r.b) {
		r.err = fmt.Errorf("%w: truncated at byte %d", ErrSnapshotCorrupt, r.off)
		return nil
	}
	out := r.b[r.off : r.off+n]
	r.off += n
	return out
}

func (r *reader) u8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *reader) u16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (r *reader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *reader) i64() int64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return int64(binary.LittleEndian.Uint64(b))
}

func (r *reader) str() string {
	n := int(r.u16())
	return string(r.take(n))
}

// ParseSnapshot decodes a binary snapshot. Trailing bytes beyond the
// known sections are ignored, and versions newer than SnapshotVersion
// are accepted by their version-1 prefix, so old readers keep working
// against extended writers.
func ParseSnapshot(data []byte) (*Snapshot, error) {
	r := &reader{b: data}
	magic := r.take(4)
	if r.err != nil {
		return nil, r.err
	}
	if [4]byte(magic) != snapshotMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrSnapshotCorrupt)
	}
	version := r.u16()
	if version < 1 {
		return nil, fmt.Errorf("%w: version %d", ErrSnapshotCorrupt, version)
	}
	s := &Snapshot{}
	s.Machine = r.str()
	s.TakenUnixNano = r.i64()
	nc := r.u32()
	if nc > maxSnapshotEntries {
		return nil, fmt.Errorf("%w: %d counters", ErrSnapshotCorrupt, nc)
	}
	for i := uint32(0); i < nc && r.err == nil; i++ {
		s.Counters = append(s.Counters, NamedValue{Name: r.str(), Value: r.i64()})
	}
	ng := r.u32()
	if ng > maxSnapshotEntries {
		return nil, fmt.Errorf("%w: %d gauges", ErrSnapshotCorrupt, ng)
	}
	for i := uint32(0); i < ng && r.err == nil; i++ {
		s.Gauges = append(s.Gauges, NamedValue{Name: r.str(), Value: r.i64()})
	}
	nh := r.u32()
	if nh > maxSnapshotEntries {
		return nil, fmt.Errorf("%w: %d histograms", ErrSnapshotCorrupt, nh)
	}
	for i := uint32(0); i < nh && r.err == nil; i++ {
		h := HistValue{Name: r.str(), Count: r.i64(), Sum: r.i64()}
		np := int(r.u16())
		for j := 0; j < np && r.err == nil; j++ {
			h.Buckets = append(h.Buckets, BucketCount{Bucket: r.u8(), Count: r.i64()})
		}
		s.Hists = append(s.Hists, h)
	}
	if version >= 2 {
		ns := r.u32()
		if r.err == nil && ns > maxSnapshotEntries {
			return nil, fmt.Errorf("%w: %d sections", ErrSnapshotCorrupt, ns)
		}
		for i := uint32(0); i < ns && r.err == nil; i++ {
			sec := Section{Name: r.str(), Version: r.u16()}
			n := int(r.u32())
			if body := r.take(n); body != nil {
				// Copy out: Data must not alias the caller's buffer.
				sec.Data = append([]byte(nil), body...)
			}
			if r.err == nil {
				s.Sections = append(s.Sections, sec)
			}
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	return s, nil
}

// MarshalJSON output is the forensic-file form (cmd/dpstat reads it);
// the default encoding of the exported struct is already what we want,
// so Snapshot has no custom JSON methods. EncodeJSON writes it with a
// trailing newline, the shape shutdown exports use.
func (s *Snapshot) EncodeJSON() []byte {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		// A Snapshot of plain integers and strings cannot fail to
		// encode; keep the signature convenient.
		return []byte("{}")
	}
	return append(b, '\n')
}

// ParseSnapshotJSON decodes the forensic-file form.
func ParseSnapshotJSON(data []byte) (*Snapshot, error) {
	s := &Snapshot{}
	if err := json.Unmarshal(data, s); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSnapshotCorrupt, err)
	}
	return s, nil
}

// Render writes the snapshot as a readable report: counters and gauges
// one per line, histograms with count, mean and p50/p95/p99 rendered
// as durations (histograms hold nanoseconds by convention).
func (s *Snapshot) Render(w io.Writer) {
	if s.Machine != "" {
		fmt.Fprintf(w, "machine %s\n", s.Machine)
	}
	if s.TakenUnixNano != 0 {
		fmt.Fprintf(w, "taken %s\n", time.Unix(0, s.TakenUnixNano).UTC().Format(time.RFC3339))
	}
	if len(s.Counters) > 0 {
		fmt.Fprintf(w, "counters:\n")
		for _, v := range s.Counters {
			fmt.Fprintf(w, "  %-40s %12d\n", v.Name, v.Value)
		}
	}
	if len(s.Gauges) > 0 {
		fmt.Fprintf(w, "gauges:\n")
		for _, v := range s.Gauges {
			fmt.Fprintf(w, "  %-40s %12d\n", v.Name, v.Value)
		}
	}
	if len(s.Hists) > 0 {
		fmt.Fprintf(w, "histograms:%31s %12s %10s %10s %10s %10s\n", "", "count", "mean", "p50", "p95", "p99")
		for i := range s.Hists {
			h := &s.Hists[i]
			fmt.Fprintf(w, "  %-40s %12d %10v %10v %10v %10v\n",
				h.Name, h.Count,
				time.Duration(h.Mean()).Round(time.Microsecond),
				time.Duration(h.Quantile(0.50)).Round(time.Microsecond),
				time.Duration(h.Quantile(0.95)).Round(time.Microsecond),
				time.Duration(h.Quantile(0.99)).Round(time.Microsecond))
		}
	}
	renderSections(w, s.Sections)
}

// Get returns the named counter or gauge value and whether it exists —
// the lookup assertions and tools use.
func (s *Snapshot) Get(name string) (int64, bool) {
	for _, v := range s.Counters {
		if v.Name == name {
			return v.Value, true
		}
	}
	for _, v := range s.Gauges {
		if v.Name == name {
			return v.Value, true
		}
	}
	return 0, false
}

// Hist returns the named histogram, nil when absent.
func (s *Snapshot) Hist(name string) *HistValue {
	for i := range s.Hists {
		if s.Hists[i].Name == name {
			return &s.Hists[i]
		}
	}
	return nil
}
