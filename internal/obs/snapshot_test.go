package obs

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// randomSnapshot builds a snapshot from a shared small name pool so
// merges genuinely collide on names.
func randomSnapshot(rng *rand.Rand) *Snapshot {
	names := []string{"a", "b.c", "filter.kept", "store.append_ns", "q"}
	s := &Snapshot{Machine: fmt.Sprintf("m%d", rng.Intn(3)), TakenUnixNano: rng.Int63n(1 << 40)}
	for _, n := range names {
		if rng.Intn(2) == 0 {
			s.Counters = append(s.Counters, NamedValue{Name: n, Value: rng.Int63n(1000)})
		}
	}
	for _, n := range names {
		if rng.Intn(2) == 0 {
			s.Gauges = append(s.Gauges, NamedValue{Name: n, Value: rng.Int63n(1000)})
		}
	}
	for _, n := range names {
		if rng.Intn(2) == 0 {
			h := HistValue{Name: n}
			for b := 0; b < NumBuckets; b++ {
				if rng.Intn(8) == 0 {
					c := rng.Int63n(100) + 1
					h.Buckets = append(h.Buckets, BucketCount{Bucket: uint8(b), Count: c})
					h.Count += c
					h.Sum += c * (int64(1) << b) / 2
				}
			}
			s.Hists = append(s.Hists, h)
		}
	}
	// Sections from a small pool with no registered merger: merges must
	// degrade to the order-insensitive multiset union.
	for _, n := range []string{"sec.x", "sec.y"} {
		if rng.Intn(2) == 0 {
			s.Sections = append(s.Sections, Section{
				Name:    n,
				Version: uint16(rng.Intn(2) + 1),
				Data:    []byte{byte(rng.Intn(4))},
			})
		}
	}
	return s
}

func clone(s *Snapshot) *Snapshot {
	out, err := ParseSnapshot(s.MarshalBinary())
	if err != nil {
		panic(err)
	}
	return out
}

// comparable strips fields Merge is allowed to resolve arbitrarily
// (machine label, timestamp) so associativity compares only the
// aggregated metric content.
func comparable(s *Snapshot) Snapshot {
	c := clone(s)
	c.Machine = ""
	c.TakenUnixNano = 0
	// Normalize nil-vs-empty slices from parse round-trips.
	if len(c.Counters) == 0 {
		c.Counters = nil
	}
	if len(c.Gauges) == 0 {
		c.Gauges = nil
	}
	if len(c.Hists) == 0 {
		c.Hists = nil
	}
	if len(c.Sections) == 0 {
		c.Sections = nil
	}
	return *c
}

// TestMergeAssociativeCommutative is the property that lets the
// controller fold per-machine snapshots in whatever order replies
// arrive: (a+b)+c == a+(b+c) and a+b == b+a, over randomized inputs.
func TestMergeAssociativeCommutative(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 200; trial++ {
		a, b, c := randomSnapshot(rng), randomSnapshot(rng), randomSnapshot(rng)

		ab := clone(a)
		ab.Merge(b)
		abc1 := clone(ab)
		abc1.Merge(c)

		bc := clone(b)
		bc.Merge(c)
		abc2 := clone(a)
		abc2.Merge(bc)

		if g1, g2 := comparable(abc1), comparable(abc2); !reflect.DeepEqual(g1, g2) {
			t.Fatalf("trial %d: merge not associative:\n(a+b)+c = %+v\na+(b+c) = %+v", trial, g1, g2)
		}

		ba := clone(b)
		ba.Merge(a)
		if g1, g2 := comparable(ab), comparable(ba); !reflect.DeepEqual(g1, g2) {
			t.Fatalf("trial %d: merge not commutative:\na+b = %+v\nb+a = %+v", trial, g1, g2)
		}
	}
}

func TestMergeSumsAndKeepsLatest(t *testing.T) {
	a := &Snapshot{
		Machine:       "m1",
		TakenUnixNano: 100,
		Counters:      []NamedValue{{Name: "x", Value: 3}},
		Hists: []HistValue{{Name: "h", Count: 2, Sum: 30,
			Buckets: []BucketCount{{Bucket: 4, Count: 2}}}},
	}
	b := &Snapshot{
		Machine:       "m2",
		TakenUnixNano: 200,
		Counters:      []NamedValue{{Name: "x", Value: 4}, {Name: "y", Value: 1}},
		Hists: []HistValue{{Name: "h", Count: 1, Sum: 100,
			Buckets: []BucketCount{{Bucket: 4, Count: 1}}}},
	}
	a.Merge(b)
	if a.Machine != "" {
		t.Fatalf("merged machine = %q, want empty for cross-machine merge", a.Machine)
	}
	if a.TakenUnixNano != 200 {
		t.Fatalf("merged timestamp = %d, want latest (200)", a.TakenUnixNano)
	}
	if v, _ := a.Get("x"); v != 7 {
		t.Fatalf("x = %d, want 7", v)
	}
	if v, _ := a.Get("y"); v != 1 {
		t.Fatalf("y = %d, want 1", v)
	}
	h := a.Hist("h")
	if h == nil || h.Count != 3 || h.Sum != 130 {
		t.Fatalf("merged hist = %+v", h)
	}
	if len(h.Buckets) != 1 || h.Buckets[0] != (BucketCount{Bucket: 4, Count: 3}) {
		t.Fatalf("merged buckets = %+v", h.Buckets)
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		s := randomSnapshot(rng)
		got, err := ParseSnapshot(s.MarshalBinary())
		if err != nil {
			t.Fatalf("trial %d: parse: %v", trial, err)
		}
		if !reflect.DeepEqual(comparable(s), comparable(got)) ||
			got.Machine != s.Machine || got.TakenUnixNano != s.TakenUnixNano {
			t.Fatalf("trial %d: round trip changed snapshot:\nin  %+v\nout %+v", trial, s, got)
		}
	}
}

// TestBinaryTrailingBytesIgnored is the forward-compat contract: a
// future writer may append sections this reader does not know, the
// same discipline as the daemon wire's trailing fields (QueryReq
// field 5). An old parser must decode the prefix it understands.
func TestBinaryTrailingBytesIgnored(t *testing.T) {
	s := &Snapshot{
		Machine:  "m1",
		Counters: []NamedValue{{Name: "x", Value: 9}},
	}
	b := s.MarshalBinary()
	b = append(b, []byte("future-section-this-parser-has-never-heard-of")...)
	got, err := ParseSnapshot(b)
	if err != nil {
		t.Fatalf("parse with trailing bytes: %v", err)
	}
	if v, ok := got.Get("x"); !ok || v != 9 {
		t.Fatalf("x = %d, %v after trailing-byte parse", v, ok)
	}
}

func TestBinaryCorruptInputs(t *testing.T) {
	s := &Snapshot{Counters: []NamedValue{{Name: "x", Value: 9}}}
	good := s.MarshalBinary()

	cases := map[string][]byte{
		"empty":     {},
		"bad magic": append([]byte("NOPE"), good[4:]...),
		"truncated": good[:len(good)-3],
		"bad count": func() []byte {
			b := append([]byte{}, good...)
			// Overwrite the counter-section count with a huge value.
			copy(b[4+2+2+len("")+8:], []byte{0xff, 0xff, 0xff, 0xff})
			return b
		}(),
	}
	for name, data := range cases {
		if _, err := ParseSnapshot(data); err == nil {
			t.Errorf("%s: parse succeeded, want error", name)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	s := randomSnapshot(rng)
	got, err := ParseSnapshotJSON(s.EncodeJSON())
	if err != nil {
		t.Fatalf("json parse: %v", err)
	}
	if !reflect.DeepEqual(comparable(s), comparable(got)) {
		t.Fatalf("json round trip changed snapshot:\nin  %+v\nout %+v", s, got)
	}
	if _, err := ParseSnapshotJSON([]byte("{not json")); err == nil {
		t.Fatal("bad json parsed")
	}
}

func TestRenderReadable(t *testing.T) {
	r := NewRegistry()
	r.Counter("filter.kept").Add(100)
	r.Gauge("filter.queue_depth").Set(3)
	r.Histogram("filter.flush_ns").Observe(50_000)
	s := r.Snapshot()
	s.Machine = "m1"
	var buf bytes.Buffer
	s.Render(&buf)
	out := buf.String()
	for _, want := range []string{"machine m1", "filter.kept", "100", "filter.queue_depth", "filter.flush_ns", "p95"} {
		if !bytes.Contains([]byte(out), []byte(want)) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	empty := &HistValue{}
	if q := empty.Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile = %d, want 0", q)
	}
	if m := empty.Mean(); m != 0 {
		t.Fatalf("empty mean = %d, want 0", m)
	}
	zeroBucket := &HistValue{Count: 5, Buckets: []BucketCount{{Bucket: 0, Count: 5}}}
	if q := zeroBucket.Quantile(0.99); q != 0 {
		t.Fatalf("zero-bucket quantile = %d, want 0", q)
	}
	top := &HistValue{Count: 1, Buckets: []BucketCount{{Bucket: NumBuckets - 1, Count: 1}}}
	if q := top.Quantile(0.5); q != int64(^uint64(0)>>1) {
		t.Fatalf("top-bucket quantile = %d, want MaxInt64", q)
	}
}
