package query

import (
	"math/rand"
	"testing"

	"dpm/internal/store"
)

// TestParallelMemoryRatio gates the parallel scan's memory behavior:
// adding a second worker must not multiply bytes per query. The old
// collector folded every segment through trace.Merge — a fresh
// allocation of the whole shard buffer per segment — and each scan
// grew a throwaway matched slice, which together took workers=2 to
// 2.4x the bytes of sequential. With pooled scan buffers and a single
// append+sort fold, the parallel path must stay within 1.3x of the
// sequential walk (a little slack over the ~1.2x target for heap
// noise; the bench gate in scripts/bench_filter.sh enforces the same
// bound on BENCH_filter.json).
func TestParallelMemoryRatio(t *testing.T) {
	if raceEnabled {
		t.Skip("race-mode sync.Pool drops Puts; pooled reuse not measurable")
	}
	if testing.Short() {
		t.Skip("benchmark-based gate")
	}
	rng := rand.New(rand.NewSource(7))
	be := buildRandomStore(t, rng, 4000, store.Config{Shards: 8, SegmentCap: 256}, false)
	rd, err := store.OpenReader(be)
	if err != nil {
		t.Fatal(err)
	}
	measure := func(workers int) (bytesPerOp int64) {
		q, err := Compile("")
		if err != nil {
			t.Fatal(err)
		}
		q.NoPrune = true
		q.Workers = workers
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := Run(rd, q)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Events) != 4000 {
					b.Fatalf("scan returned %d events, want 4000", len(res.Events))
				}
			}
		})
		return r.AllocedBytesPerOp()
	}
	seq := measure(1)
	par := measure(2)
	if ratio := float64(par) / float64(seq); ratio > 1.3 {
		t.Fatalf("workers=2 allocates %d bytes/op vs %d sequential (%.2fx), want <= 1.3x",
			par, seq, ratio)
	}
}
