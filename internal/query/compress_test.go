package query

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"dpm/internal/store"
)

// formatEvents renders just the event stream — seq, order, record
// bytes. Stats legitimately differ across storage formats (block
// counts exist only for v2), so byte-identity is asserted on the
// events alone.
func formatEvents(res *Result) string {
	var b strings.Builder
	for i := range res.Events {
		fmt.Fprintf(&b, "seq=%d %s\n", res.Events[i].Seq, res.Events[i].Format())
	}
	return b.String()
}

// TestCompressedRunEquivalence stores one randomized record stream
// three ways — uncompressed, block-compressed, and block-compressed
// with tiny blocks (many zone maps per segment) — and asserts every
// rule set returns byte-identical events from all three, at workers
// 1/2/8. Segment capacity is accounted in v1-equivalent bytes in both
// formats, so the rotation layout (and thus result order) is the same;
// only the bytes on disk differ.
func TestCompressedRunEquivalence(t *testing.T) {
	rules := []string{
		"",
		"machine=2",
		"cpuTime>=500,cpuTime<2000",
		"type=4\ntype=8",
		"pid=101,machine=#*",
		"msgLength>=300,cpuTime=#*",
		"machine=1,machine=2", // self-contradictory: prunes everything
		"cpuTime>=1000\nmachine=3,cpuTime<3000",
	}
	layouts := []struct {
		name     string
		shards   int
		cap      int
		block    int
		n        int
		unsealed bool
	}{
		{"3shards", 3, 2048, 512, 400, false},
		{"8shards-tiny-blocks", 8, 4096, 256, 500, false},
		{"unsealed-tail", 4, 2048, 512, 400, true},
		{"one-big-segment", 2, 1 << 20, 1024, 300, false},
	}
	for _, lay := range layouts {
		t.Run(lay.name, func(t *testing.T) {
			// Identical record streams into each store: same seed.
			flat := buildRandomStore(t, rand.New(rand.NewSource(99)), lay.n,
				store.Config{Shards: lay.shards, SegmentCap: lay.cap}, lay.unsealed)
			comp := buildRandomStore(t, rand.New(rand.NewSource(99)), lay.n,
				store.Config{Shards: lay.shards, SegmentCap: lay.cap,
					Compress: store.CompressBlocks, BlockTarget: lay.block}, lay.unsealed)
			rdFlat, err := store.OpenReader(flat)
			if err != nil {
				t.Fatal(err)
			}
			rdComp, err := store.OpenReader(comp)
			if err != nil {
				t.Fatal(err)
			}
			for ri, text := range rules {
				for _, noPrune := range []bool{false, true} {
					q, err := Compile(text)
					if err != nil {
						t.Fatal(err)
					}
					q.NoPrune = noPrune
					res, err := Run(rdFlat, q)
					if err != nil {
						t.Fatalf("rule %d flat: %v", ri, err)
					}
					want := formatEvents(res)
					for _, workers := range []int{1, 2, 8} {
						q.Workers = workers
						res, err := Run(rdComp, q)
						if err != nil {
							t.Fatalf("rule %d compressed workers=%d: %v", ri, workers, err)
						}
						if got := formatEvents(res); got != want {
							t.Fatalf("rule %d noPrune=%v workers=%d: compressed scan diverges from flat:\n--- flat\n%s\n--- compressed\n%s",
								ri, noPrune, workers, want, got)
						}
					}
				}
			}
		})
	}
}

// TestBlockPruningPrunes is the sanity check behind the equivalence:
// on a selective query over a compressed multi-block store, pruning
// must actually skip blocks (else the test above proves nothing about
// the pruned decode path).
func TestBlockPruningPrunes(t *testing.T) {
	be := buildRandomStore(t, rand.New(rand.NewSource(5)), 500,
		store.Config{Shards: 2, SegmentCap: 1 << 20, Compress: store.CompressBlocks, BlockTarget: 512}, false)
	rd, err := store.OpenReader(be)
	if err != nil {
		t.Fatal(err)
	}
	q, err := Compile("cpuTime>=1000,cpuTime<1400")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(rd, q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.BlocksPruned == 0 {
		t.Fatalf("selective query pruned no blocks: %+v", res.Stats)
	}
	if len(res.Events) == 0 {
		t.Fatal("selective query matched nothing")
	}
}
