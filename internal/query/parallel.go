package query

import (
	"container/heap"
	"errors"
	"sort"
	"sync"
	"sync/atomic"

	"dpm/internal/store"
	"dpm/internal/trace"
)

// This file is the query engine's multicore execution layer. Sequential
// Run walks each shard's admitted segments lazily on one goroutine; the
// parallel path load-balances segment scans — parse frames, evaluate
// rules, project discards — across a bounded worker pool, then feeds
// the same cpuTime-ordered heap merge. The output is byte-identical to
// sequential Run, order included, because:
//
//   - per-shard event order is a fold of trace.Merge over the shard's
//     segments in rotation order; Merge is concatenation plus a stable
//     sort by cpuTime, so the fold equals appending each segment's
//     matches in task order and stable-sorting the shard buffer once
//     (stable sorting is associative over concatenation) — which is
//     what the collector does, without Merge's per-fold reallocation;
//   - cross-shard order comes from the same cursorHeap with the same
//     shard-id tie-break;
//   - stats are sums of per-segment counters, which commute.
//
// Results flow through one shared bounded channel: workers block when
// the merge goroutine falls behind (backpressure bounds memory at
// roughly queue-depth segments beyond what the in-order fold has
// already consumed), and the merge loop always drains, so no
// configuration of slow shards can deadlock the pool.

// scanTask is one segment to scan. Tasks are numbered in shard-major
// rotation order; the fold consumes results strictly in task order so
// per-shard merges match the sequential cursor exactly.
type scanTask struct {
	idx   int
	shard int
	rs    *store.ReaderSegment
}

// scanResult is one scanned segment's contribution.
type scanResult struct {
	idx     int
	shard   int
	matched []trace.Event
	scanned int // 1 per load attempt (mirrors stats.Scanned)
	blocks  int
	pruned  int // blocks skipped on zone-map evidence
	records int
	bad     int
	err     error
}

// matchedPool recycles per-segment match buffers across scan tasks.
// Without it every segment grows a fresh matched slice that dies as
// soon as the collector copies it out — the allocation storm behind
// the old 2.4x bytes/op blow-up from one worker to two.
var matchedPool = sync.Pool{
	New: func() any { return make([]trace.Event, 0, 512) },
}

func getMatched() []trace.Event { return matchedPool.Get().([]trace.Event)[:0] }

func putMatched(s []trace.Event) {
	clear(s[:cap(s)]) // events hold maps; don't pin them from the pool
	matchedPool.Put(s[:0])
}

// scanSegment runs the record-selection tier over one segment: the
// exact body of shardCursor.loadNext, minus the merge (which must stay
// in task order and so runs on the collector). res.matched is a pooled
// scratch buffer; the collector owns returning it.
func scanSegment(q *Query, rs *store.ReaderSegment) scanResult {
	res := scanResult{scanned: 1, matched: getMatched()}
	admit := q.Admits
	if q.NoPrune {
		admit = nil
	}
	d := store.AcquireDecoder()
	st, err := rs.Scan(d, admit, func(m store.Meta, line []byte) {
		ev, perr := trace.ParseOne(line)
		if perr != nil {
			res.bad++
			return
		}
		ok, discards := q.Match(&ev)
		if !ok {
			return
		}
		res.matched = append(res.matched, project(ev, discards))
	})
	store.ReleaseDecoder(d)
	res.records, res.blocks, res.pruned = st.Records, st.Blocks, st.BlocksPruned
	if err != nil && !errors.Is(err, store.ErrTruncated) {
		putMatched(res.matched)
		return scanResult{err: err}
	}
	return res
}

// runParallel executes the query with a pool of workers scanning
// segments concurrently. It mirrors Run exactly: same pruning, same
// per-shard ordering, same heap merge, same stats.
func runParallel(rd *store.Reader, q *Query, workers int) (*Result, error) {
	res := &Result{}

	// Admission pass: prune by footer, number the survivors in
	// shard-major rotation order. Identical decisions to Scan.
	var tasks []scanTask
	shards := rd.Shards()
	for shardID, segs := range shards {
		for _, rs := range segs {
			res.Stats.Segments++
			if rs.Sealed && !q.Admits(rs.Index) {
				res.Stats.Pruned++
				continue
			}
			tasks = append(tasks, scanTask{idx: len(tasks), shard: shardID, rs: rs})
		}
	}
	if workers > len(tasks) {
		workers = len(tasks)
	}

	// Worker pool: a shared atomic cursor hands out tasks, a shared
	// bounded channel carries results back. The collector below receives
	// unconditionally while waiting for the next in-order result, so a
	// full channel only ever means "workers are ahead of the fold" —
	// they park until the fold catches up.
	var (
		next    atomic.Int64
		results = make(chan scanResult, 2*workers)
		wg      sync.WaitGroup
	)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				n := int(next.Add(1)) - 1
				if n >= len(tasks) {
					return
				}
				r := scanSegment(q, tasks[n].rs)
				r.idx, r.shard = n, tasks[n].shard
				results <- r
			}
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	// In-order fold: buffer out-of-order arrivals, consume strictly by
	// task index, appending each segment's matches to its shard buffer.
	// One stable sort per shard afterwards reproduces the sequential
	// cursor's trace.Merge fold without its quadratic reallocation.
	bufs := make([][]trace.Event, len(shards))
	pending := make(map[int]scanResult, 2*workers)
	var firstErr error
	errIdx := len(tasks)
	want := 0
	for r := range results {
		pending[r.idx] = r
		for {
			nr, ok := pending[want]
			if !ok {
				break
			}
			delete(pending, want)
			want++
			if nr.err != nil {
				// Remember the earliest failure in task order (the one
				// the sequential walk would have hit first) and keep
				// draining so the workers can exit.
				if nr.idx < errIdx {
					firstErr, errIdx = nr.err, nr.idx
				}
				continue
			}
			res.Stats.Scanned += nr.scanned
			res.Stats.Blocks += nr.blocks
			res.Stats.BlocksPruned += nr.pruned
			res.Stats.Records += nr.records
			res.Stats.BadLines += nr.bad
			res.Stats.Matched += len(nr.matched)
			bufs[nr.shard] = append(bufs[nr.shard], nr.matched...)
			putMatched(nr.matched)
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	for s := range bufs {
		buf := bufs[s]
		sort.SliceStable(buf, func(i, j int) bool { return buf[i].CPUTime < buf[j].CPUTime })
	}

	// Cross-shard merge: the same cursorHeap as Scan, over cursors whose
	// segments are already fully loaded.
	var h cursorHeap
	for shardID, buf := range bufs {
		if len(buf) == 0 {
			continue
		}
		heap.Push(&h, &heapEntry{c: &shardCursor{q: q, buf: buf, stats: &res.Stats}, shard: shardID})
	}
	nextSeq := 0
	for h.Len() > 0 {
		e := h[0]
		ev := e.c.buf[e.c.idx]
		e.c.idx++
		ev.Seq = nextSeq
		nextSeq++
		res.Events = append(res.Events, ev)
		if e.c.idx < len(e.c.buf) {
			heap.Fix(&h, 0)
		} else {
			heap.Pop(&h)
		}
	}
	return res, nil
}
