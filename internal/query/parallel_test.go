package query

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"dpm/internal/meter"
	"dpm/internal/store"
	"dpm/internal/trace"
)

// buildRandomStore fills a store with a pseudo-random (but seeded,
// hence reproducible) event population: clustered machines, heavily
// duplicated timestamps (to stress the merge's tie-breaking), varied
// types and pids. With unsealedTail, extra records land after the last
// Flush so the snapshot ends in an unsealed segment per written shard.
func buildRandomStore(t *testing.T, rng *rand.Rand, n int, cfg store.Config, unsealedTail bool) store.Backend {
	t.Helper()
	be := store.NewMemBackend()
	st, err := store.Open(be, cfg)
	if err != nil {
		t.Fatal(err)
	}
	add := func(i int) {
		typ := meter.EvSend
		if i%3 == 1 {
			typ = meter.EvRecv
		} else if i%3 == 2 {
			typ = meter.EvFork
		}
		e := trace.Event{
			Seq: i, Type: typ, Event: typ.String(),
			Machine: rng.Intn(6) + 1,
			// Few distinct timestamps: ties across shards are the norm,
			// so any tie-break drift between the paths shows up.
			CPUTime: int64(rng.Intn(40) * 100),
			Fields:  map[string]uint64{"pid": uint64(100 + rng.Intn(5))},
			Names:   map[string]meter.Name{},
		}
		if typ == meter.EvSend || typ == meter.EvRecv {
			e.Fields["sock"] = 3
			e.Fields["msgLength"] = uint64(64 + rng.Intn(512))
		} else {
			e.Fields["newPid"] = e.Fields["pid"] + 1
		}
		m := store.Meta{
			Machine: uint16(e.Machine), Time: uint32(e.CPUTime),
			Type: uint32(e.Type), PID: uint32(e.Fields["pid"]),
		}
		if err := st.Append(m, e.Format()); err != nil {
			t.Fatal(err)
		}
	}
	tail := 0
	if unsealedTail {
		tail = n / 10
	}
	for i := 0; i < n-tail; i++ {
		add(i)
	}
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := n - tail; i < n; i++ {
		add(i)
	}
	return be
}

// format renders a result the way the daemon ships it: the stats line
// then every record, order included — the byte-identical unit of
// comparison.
func format(res *Result) string {
	var b strings.Builder
	b.WriteString(res.Stats.String())
	fmt.Fprintf(&b, " badLines=%d\n", res.Stats.BadLines)
	for i := range res.Events {
		fmt.Fprintf(&b, "seq=%d %s\n", res.Events[i].Seq, res.Events[i].Format())
	}
	return b.String()
}

// TestParallelRunEquivalence sweeps randomized rule sets against
// randomized shard layouts and asserts the parallel path is
// byte-identical — events, order, sequence numbers, statistics — to
// sequential Run at every worker count.
func TestParallelRunEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	rules := []string{
		"",
		"machine=2",
		"cpuTime>=500,cpuTime<2000",
		"type=4\ntype=8",
		"pid=101,machine=#*",
		"msgLength>=300,cpuTime=#*",
		"machine=1,machine=2", // self-contradictory: prunes everything
		"machine=*,pid>=0",
		"cpuTime>=1000\nmachine=3,cpuTime<3000",
	}
	layouts := []struct {
		name     string
		cfg      store.Config
		n        int
		unsealed bool
	}{
		{"1shard", store.Config{Shards: 1, SegmentCap: 512}, 300, false},
		{"3shards", store.Config{Shards: 3, SegmentCap: 256}, 400, false},
		{"8shards", store.Config{Shards: 8, SegmentCap: 512}, 500, false},
		{"unsealed-tail", store.Config{Shards: 4, SegmentCap: 384}, 400, true},
		{"one-big-segment", store.Config{Shards: 2, SegmentCap: 1 << 20}, 200, false},
	}
	for _, lay := range layouts {
		t.Run(lay.name, func(t *testing.T) {
			be := buildRandomStore(t, rng, lay.n, lay.cfg, lay.unsealed)
			rd, err := store.OpenReader(be)
			if err != nil {
				t.Fatal(err)
			}
			for ri, text := range rules {
				for _, noPrune := range []bool{false, true} {
					q, err := Compile(text)
					if err != nil {
						t.Fatal(err)
					}
					q.NoPrune = noPrune
					seq, err := Run(rd, q)
					if err != nil {
						t.Fatalf("rule %d sequential: %v", ri, err)
					}
					want := format(seq)
					for _, workers := range []int{2, 8} {
						q.Workers = workers
						par, err := Run(rd, q)
						if err != nil {
							t.Fatalf("rule %d workers=%d: %v", ri, workers, err)
						}
						if got := format(par); got != want {
							t.Fatalf("rule %d noPrune=%v workers=%d diverges from sequential:\n--- sequential\n%s\n--- parallel\n%s",
								ri, noPrune, workers, want, got)
						}
					}
				}
			}
		})
	}
}

// TestParallelRunDeterminism runs the same parallel query repeatedly
// and across worker counts: scheduling must never leak into results.
func TestParallelRunDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	be := buildRandomStore(t, rng, 400, store.Config{Shards: 4, SegmentCap: 256}, false)
	rd, err := store.OpenReader(be)
	if err != nil {
		t.Fatal(err)
	}
	q, err := Compile("cpuTime>=200\nmachine=5")
	if err != nil {
		t.Fatal(err)
	}
	var want string
	for _, workers := range []int{1, 2, 8} {
		q.Workers = workers
		for rep := 0; rep < 5; rep++ {
			res, err := Run(rd, q)
			if err != nil {
				t.Fatal(err)
			}
			got := format(res)
			if want == "" {
				want = got
				continue
			}
			if got != want {
				t.Fatalf("workers=%d rep=%d: nondeterministic result", workers, rep)
			}
		}
	}
	if want == "" || !strings.Contains(want, "matched=") {
		t.Fatal("determinism run produced no output")
	}
}
