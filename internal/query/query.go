// Package query evaluates the paper's selection-rule syntax (Figures
// 3.3 and 3.4: the operators > < = != >= <=, the '*' wildcard, and the
// '#' discard prefix) against a segmented event store — the third
// stage of the measurement model applied to stored data instead of a
// live meter stream.
//
// A query is a templates file: each line is an alternative rule, each
// rule a conjunction of conditions. Evaluation proceeds in two tiers:
//
//   - Segment pruning. Each rule compiles to a conservative envelope —
//     a cpuTime window plus machine/pid/type bitmap constraints — that
//     any matching record must fall inside. A sealed segment whose
//     footer index intersects no rule's envelope cannot contain a
//     match and is skipped without parsing a single frame.
//   - Record selection. Scanned segments stream their records through
//     the full rule semantics, including '#' projection, and the
//     per-shard streams merge into one timestamp-ordered result, the
//     same ordering discipline as trace.Merge.
package query

import (
	"container/heap"
	"errors"
	"fmt"

	"dpm/internal/filter"
	"dpm/internal/meter"
	"dpm/internal/obs"
	"dpm/internal/store"
	"dpm/internal/trace"
)

// Query is a compiled query: the parsed rules, the pruning envelope of
// each, and each rule's precomputed discard set (so Match allocates no
// map per record).
type Query struct {
	Rules filter.Rules
	// NoPrune disables footer pruning, scanning every segment — the
	// diagnostic baseline the benchmarks compare against.
	NoPrune bool
	// Workers sets the segment-scan parallelism of Run. Zero or one
	// selects the sequential path; higher values scan segments on a
	// worker pool of that size (see parallel.go). Output is identical
	// either way.
	Workers int
	// Obs, when set, receives the query.* counters and the query.run_ns
	// latency of each Run — on a daemon-executed query the filter
	// machine's registry.
	Obs *obs.Registry

	bounds   []bounds
	discards []map[string]bool
}

// Compile parses selection rules (one per line, Figure 3.3 syntax) and
// derives their pruning envelopes. Empty input compiles to the
// match-everything query, as with filter templates.
func Compile(text string) (*Query, error) {
	rules, err := filter.ParseRules([]byte(text))
	if err != nil {
		return nil, err
	}
	q := &Query{Rules: rules}
	for _, r := range rules {
		q.bounds = append(q.bounds, boundsOf(r))
		q.discards = append(q.discards, r.DiscardSet())
	}
	return q, nil
}

// bounds is the pruning envelope of one rule: every record the rule
// can match lies inside it, so a segment whose footer index misses it
// cannot satisfy the rule. Zero bitmap fields mean unconstrained.
type bounds struct {
	minTime, maxTime uint64
	machines         uint64
	pids             uint64
	types            uint32
	// empty marks a self-contradictory rule (machine=1,machine=2): no
	// record can match, so no segment needs scanning for it.
	empty bool
}

func boundsOf(r filter.Rule) bounds {
	b := bounds{maxTime: ^uint64(0)}
	narrowTime := func(lo, hi uint64) {
		if lo > b.minTime {
			b.minTime = lo
		}
		if hi < b.maxTime {
			b.maxTime = hi
		}
	}
	narrow64 := func(cur *uint64, bit uint64) {
		if *cur == 0 {
			*cur = bit
		} else if *cur&bit == 0 {
			b.empty = true
		} else {
			*cur &= bit
		}
	}
	narrow32 := func(cur *uint32, bit uint32) {
		if *cur == 0 {
			*cur = bit
		} else if *cur&bit == 0 {
			b.empty = true
		} else {
			*cur &= bit
		}
	}
	for _, c := range r {
		if c.Wildcard || c.FieldRef != "" {
			continue
		}
		switch c.Field {
		case "cpuTime":
			switch c.Op {
			case filter.OpEQ:
				narrowTime(c.Value, c.Value)
			case filter.OpGE:
				narrowTime(c.Value, ^uint64(0))
			case filter.OpGT:
				if c.Value == ^uint64(0) {
					b.empty = true
				} else {
					narrowTime(c.Value+1, ^uint64(0))
				}
			case filter.OpLE:
				narrowTime(0, c.Value)
			case filter.OpLT:
				if c.Value == 0 {
					b.empty = true
				} else {
					narrowTime(0, c.Value-1)
				}
			}
		case "machine":
			if c.Op == filter.OpEQ {
				narrow64(&b.machines, store.MachineBit(c.Value))
			}
		case "pid":
			if c.Op == filter.OpEQ {
				narrow64(&b.pids, store.PIDBit(c.Value))
			}
		case "type", "traceType":
			if c.Op == filter.OpEQ {
				narrow32(&b.types, store.TypeBit(c.Value))
			}
		}
	}
	if b.minTime > b.maxTime {
		b.empty = true
	}
	return b
}

func (b bounds) admits(x store.Index) bool {
	if b.empty || x.Count == 0 {
		return false
	}
	if x.MaxTime < b.minTime || x.MinTime > b.maxTime {
		return false
	}
	if b.machines != 0 && b.machines&x.Machines == 0 {
		return false
	}
	if b.pids != 0 && b.pids&x.PIDs == 0 {
		return false
	}
	if b.types != 0 && b.types&x.Types == 0 {
		return false
	}
	return true
}

// Admits reports whether a segment with the given footer index could
// contain a matching record: true when any rule's envelope intersects
// the index (or when pruning is off or there are no rules).
func (q *Query) Admits(x store.Index) bool {
	if q.NoPrune || len(q.Rules) == 0 {
		return true
	}
	for _, b := range q.bounds {
		if b.admits(x) {
			return true
		}
	}
	return false
}

// eventSource adapts a parsed trace event to filter.FieldSource, so
// the query engine runs the filter's own rule evaluator instead of a
// drifting copy. Header fields resolve by name first, then the body
// fields, mirroring filter.Record.Field; the "size" header field is
// not carried in log lines and so cannot be queried.
type eventSource trace.Event

func (e *eventSource) Field(name string) (uint64, bool) {
	switch name {
	case "machine":
		return uint64(e.Machine), true
	case "cpuTime":
		return uint64(e.CPUTime), true
	case "procTime":
		return uint64(e.ProcTime), true
	case "type", "traceType":
		return uint64(e.Type), true
	}
	v, ok := e.Fields[name]
	return v, ok
}

func (e *eventSource) NameField(name string) (meter.Name, bool) {
	n, ok := e.Names[name]
	return n, ok
}

// Match evaluates the query against one event. With no rules every
// event matches; otherwise the first matching rule's discards apply.
// The returned discard set is precomputed per rule and shared across
// calls: callers must not mutate it.
func (q *Query) Match(e *trace.Event) (bool, map[string]bool) {
	if len(q.Rules) == 0 {
		return true, nil
	}
	src := (*eventSource)(e)
	for i, r := range q.Rules {
		if r.MatchSource(src) {
			if i < len(q.discards) {
				return true, q.discards[i]
			}
			// Query built without Compile: fall back to a fresh set.
			return true, r.DiscardSet()
		}
	}
	return false, nil
}

// project applies a matched rule's '#' discards to the event. Header
// fields are never dropped, mirroring the filter's record formatting,
// which always prints them.
func project(e trace.Event, discards map[string]bool) trace.Event {
	drop := false
	for k := range discards {
		if _, ok := e.Fields[k]; ok {
			drop = true
		}
		if _, ok := e.Names[k]; ok {
			drop = true
		}
	}
	if !drop {
		return e
	}
	fields := make(map[string]uint64, len(e.Fields))
	for k, v := range e.Fields {
		if !discards[k] {
			fields[k] = v
		}
	}
	names := make(map[string]meter.Name, len(e.Names))
	for k, v := range e.Names {
		if !discards[k] {
			names[k] = v
		}
	}
	e.Fields, e.Names = fields, names
	return e
}

// Stats describes how a query executed.
type Stats struct {
	Segments     int // segments in the store snapshot
	Scanned      int // segments whose frames were parsed
	Pruned       int // segments skipped on footer evidence alone
	Blocks       int // blocks (or streams/frame runs) visited in scanned segments
	BlocksPruned int // compressed blocks skipped on zone-map evidence
	Records      int // records examined in scanned segments
	Matched      int // records selected
	BadLines     int // stored lines the trace parser rejected (skipped)
}

// String renders the stats in the form the controller prints.
func (s Stats) String() string {
	return fmt.Sprintf("segments=%d scanned=%d pruned=%d records=%d matched=%d",
		s.Segments, s.Scanned, s.Pruned, s.Records, s.Matched)
}

// Result is a fully-drained query.
type Result struct {
	Events []trace.Event
	Stats  Stats
}

// Admitted returns the segments the query must scan — every segment
// the footer-pruning envelope cannot rule out — and a Stats with the
// Segments/Pruned counts of that decision. Order is shard order, then
// rotation order within a shard. This is the entry point aggregation
// push-down uses: an aggregate fold is order-independent, so it scans
// admitted segments directly instead of paying the cpuTime heap merge
// the record-shipping path needs.
func Admitted(rd *store.Reader, q *Query) ([]*store.ReaderSegment, Stats) {
	var segs []*store.ReaderSegment
	var stats Stats
	for _, shard := range rd.Shards() {
		for _, rs := range shard {
			stats.Segments++
			if rs.Sealed && !q.Admits(rs.Index) {
				stats.Pruned++
				continue
			}
			segs = append(segs, rs)
		}
	}
	return segs, stats
}

// shardCursor streams one shard's matching events in cpuTime order,
// loading admitted segments lazily: a segment is parsed only when the
// stream cannot otherwise prove its next event is safe to emit.
type shardCursor struct {
	q     *Query
	segs  []*store.ReaderSegment // admitted, not yet loaded
	buf   []trace.Event          // matching events, sorted by CPUTime
	idx   int
	stats *Stats
}

// minRemaining is the smallest timestamp any unloaded segment could
// contain; an unsealed segment's contents are unknown, so it pins the
// floor to zero.
func (c *shardCursor) minRemaining() uint64 {
	min := ^uint64(0)
	for _, rs := range c.segs {
		if !rs.Sealed {
			return 0
		}
		if rs.Index.MinTime < min {
			min = rs.Index.MinTime
		}
	}
	return min
}

// ready ensures the cursor's head (if any) is safe to emit, loading
// segments until no unloaded segment could precede it. It returns
// false when the shard is drained.
func (c *shardCursor) ready() (bool, error) {
	for {
		if c.idx < len(c.buf) &&
			(len(c.segs) == 0 || uint64(c.buf[c.idx].CPUTime) <= c.minRemaining()) {
			return true, nil
		}
		if len(c.segs) == 0 {
			return false, nil
		}
		if err := c.loadNext(); err != nil {
			return false, err
		}
	}
}

// loadNext scans the next admitted segment and merges its matching
// events into the buffer. Compressed segments decompress only the
// blocks the query's envelope admits, through a pooled decoder. A torn
// unsealed tail is tolerated, as with trace logs; corruption of a
// sealed segment is fatal to the query.
func (c *shardCursor) loadNext() error {
	rs := c.segs[0]
	c.segs = c.segs[1:]
	c.stats.Scanned++
	admit := c.q.Admits
	if c.q.NoPrune {
		admit = nil
	}
	var matched []trace.Event
	d := store.AcquireDecoder()
	st, err := rs.Scan(d, admit, func(m store.Meta, line []byte) {
		ev, perr := trace.ParseOne(line)
		if perr != nil {
			c.stats.BadLines++
			return
		}
		ok, discards := c.q.Match(&ev)
		if !ok {
			return
		}
		c.stats.Matched++
		matched = append(matched, project(ev, discards))
	})
	store.ReleaseDecoder(d)
	c.stats.Records += st.Records
	c.stats.Blocks += st.Blocks
	c.stats.BlocksPruned += st.BlocksPruned
	if err != nil && !errors.Is(err, store.ErrTruncated) {
		return err
	}
	c.buf = trace.Merge(c.buf[c.idx:], matched)
	c.idx = 0
	return nil
}

// cursorHeap orders cursors by their head event's timestamp (shard id
// breaking ties for determinism).
type cursorHeap []*heapEntry

type heapEntry struct {
	c     *shardCursor
	shard int
}

func (h cursorHeap) Len() int { return len(h) }
func (h cursorHeap) Less(i, j int) bool {
	a, b := h[i].c.buf[h[i].c.idx], h[j].c.buf[h[j].c.idx]
	if a.CPUTime != b.CPUTime {
		return a.CPUTime < b.CPUTime
	}
	return h[i].shard < h[j].shard
}
func (h cursorHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *cursorHeap) Push(x any)   { *h = append(*h, x.(*heapEntry)) }
func (h *cursorHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// Iter streams a query's results in cpuTime order across every shard.
type Iter struct {
	h       cursorHeap
	stats   Stats
	nextSeq int
}

// Scan starts a query against a store snapshot: prunes segments by
// footer, then sets up the per-shard cursors and their merge.
func Scan(rd *store.Reader, q *Query) (*Iter, error) {
	it := &Iter{}
	for shardID, segs := range rd.Shards() {
		cur := &shardCursor{q: q, stats: &it.stats}
		for _, rs := range segs {
			it.stats.Segments++
			if rs.Sealed && !q.Admits(rs.Index) {
				it.stats.Pruned++
				continue
			}
			cur.segs = append(cur.segs, rs)
		}
		ok, err := cur.ready()
		if err != nil {
			return nil, err
		}
		if ok {
			heap.Push(&it.h, &heapEntry{c: cur, shard: shardID})
		}
	}
	return it, nil
}

// Next returns the next matching event; ok=false means the stream is
// drained. Events are re-sequenced in merge order, as trace.Merge
// does.
func (it *Iter) Next() (trace.Event, bool, error) {
	if it.h.Len() == 0 {
		return trace.Event{}, false, nil
	}
	e := it.h[0]
	ev := e.c.buf[e.c.idx]
	e.c.idx++
	ok, err := e.c.ready()
	if err != nil {
		return trace.Event{}, false, err
	}
	if ok {
		heap.Fix(&it.h, 0)
	} else {
		heap.Pop(&it.h)
	}
	ev.Seq = it.nextSeq
	it.nextSeq++
	return ev, true, nil
}

// Stats returns the counters accumulated so far; they are final once
// Next has reported a drained stream.
func (it *Iter) Stats() Stats { return it.stats }

// Run drains a query and returns all matching events with the final
// statistics. With q.Workers > 1 the segment scans run on a worker
// pool; results are identical to the sequential path, byte for byte.
func Run(rd *store.Reader, q *Query) (*Result, error) {
	var span obs.Span
	if q.Obs != nil {
		span = obs.StartSpan(q.Obs.Histogram("query.run_ns"))
	}
	res, err := runQuery(rd, q)
	if err != nil || q.Obs == nil {
		return res, err
	}
	span.End()
	q.Obs.Counter("query.runs").Inc()
	q.Obs.Counter("query.segments").Add(int64(res.Stats.Segments))
	q.Obs.Counter("query.scanned").Add(int64(res.Stats.Scanned))
	q.Obs.Counter("query.pruned").Add(int64(res.Stats.Pruned))
	q.Obs.Counter("query.records").Add(int64(res.Stats.Records))
	q.Obs.Counter("query.matched").Add(int64(res.Stats.Matched))
	q.Obs.Counter("query.bad_lines").Add(int64(res.Stats.BadLines))
	return res, nil
}

func runQuery(rd *store.Reader, q *Query) (*Result, error) {
	if q.Workers > 1 {
		return runParallel(rd, q, q.Workers)
	}
	it, err := Scan(rd, q)
	if err != nil {
		return nil, err
	}
	res := &Result{}
	for {
		ev, ok, err := it.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		res.Events = append(res.Events, ev)
	}
	res.Stats = it.Stats()
	return res, nil
}
