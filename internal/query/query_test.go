package query

import (
	"fmt"
	"testing"

	"dpm/internal/meter"
	"dpm/internal/store"
	"dpm/internal/trace"
)

// buildStore writes n synthetic SEND/RECV events into a fresh store
// with small segments, flushed so every segment is sealed and indexed.
func buildStore(t *testing.T, n int, cfg store.Config) (store.Backend, []trace.Event) {
	t.Helper()
	be := store.NewMemBackend()
	st, err := store.Open(be, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var events []trace.Event
	for i := 0; i < n; i++ {
		typ := meter.EvSend
		if i%2 == 1 {
			typ = meter.EvRecv
		}
		e := trace.Event{
			Seq: i, Type: typ, Event: typ.String(),
			Machine: i%4 + 1, CPUTime: int64(i * 10),
			Fields: map[string]uint64{
				"pid": uint64(100 + i%4), "sock": 3, "msgLength": uint64(64 + i),
			},
			Names: map[string]meter.Name{},
		}
		events = append(events, e)
		m := store.Meta{
			Machine: uint16(e.Machine), Time: uint32(e.CPUTime),
			Type: uint32(e.Type), PID: uint32(e.Fields["pid"]),
		}
		if err := st.Append(m, e.Format()); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	return be, events
}

func run(t *testing.T, be store.Backend, rules string, noPrune bool) *Result {
	t.Helper()
	q, err := Compile(rules)
	if err != nil {
		t.Fatal(err)
	}
	q.NoPrune = noPrune
	rd, err := store.OpenReader(be)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(rd, q)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestQueryMatchAll(t *testing.T) {
	be, events := buildStore(t, 100, store.Config{SegmentCap: 512})
	res := run(t, be, "", false)
	if len(res.Events) != len(events) {
		t.Fatalf("match-all returned %d events, want %d", len(res.Events), len(events))
	}
	// The merged stream must be cpuTime-ordered and re-sequenced.
	for i, e := range res.Events {
		if e.Seq != i {
			t.Fatalf("event %d has Seq %d", i, e.Seq)
		}
		if i > 0 && e.CPUTime < res.Events[i-1].CPUTime {
			t.Fatalf("events out of order at %d: %d < %d", i, e.CPUTime, res.Events[i-1].CPUTime)
		}
	}
	if res.Stats.Pruned != 0 {
		t.Fatalf("match-all pruned %d segments", res.Stats.Pruned)
	}
}

func TestQueryTimeRangePrunes(t *testing.T) {
	be, _ := buildStore(t, 400, store.Config{SegmentCap: 512})
	rules := "cpuTime>=1000,cpuTime<1200"
	res := run(t, be, rules, false)
	if res.Stats.Pruned == 0 {
		t.Fatalf("selective time range pruned nothing: %+v", res.Stats)
	}
	if res.Stats.Scanned+res.Stats.Pruned != res.Stats.Segments {
		t.Fatalf("scanned+pruned != segments: %+v", res.Stats)
	}
	full := run(t, be, rules, true)
	if full.Stats.Pruned != 0 || full.Stats.Scanned != full.Stats.Segments {
		t.Fatalf("NoPrune still pruned: %+v", full.Stats)
	}
	// Pruning must not change the answer.
	if len(res.Events) != len(full.Events) {
		t.Fatalf("pruned answer %d events, full scan %d", len(res.Events), len(full.Events))
	}
	if len(res.Events) == 0 {
		t.Fatal("selective query matched nothing")
	}
	for _, e := range res.Events {
		if e.CPUTime < 1000 || e.CPUTime >= 1200 {
			t.Fatalf("event outside time range: %d", e.CPUTime)
		}
	}
}

func TestQueryMachinePredicate(t *testing.T) {
	be, events := buildStore(t, 200, store.Config{SegmentCap: 512})
	res := run(t, be, "machine=2", false)
	want := 0
	for _, e := range events {
		if e.Machine == 2 {
			want++
		}
	}
	if len(res.Events) != want {
		t.Fatalf("machine=2 matched %d, want %d", len(res.Events), want)
	}
	for _, e := range res.Events {
		if e.Machine != 2 {
			t.Fatalf("machine=%d leaked through", e.Machine)
		}
	}
	// With 4 machines and 4 shards, machine=2's records live in one
	// shard; the other shards' segments never intersect its bitmap.
	if res.Stats.Pruned == 0 {
		t.Fatalf("machine predicate pruned nothing: %+v", res.Stats)
	}
}

func TestQueryContradictionPrunesEverything(t *testing.T) {
	be, _ := buildStore(t, 100, store.Config{SegmentCap: 512})
	res := run(t, be, "machine=1,machine=2", false)
	if len(res.Events) != 0 {
		t.Fatalf("contradictory rule matched %d events", len(res.Events))
	}
	if res.Stats.Scanned != 0 {
		t.Fatalf("contradictory rule scanned %d segments", res.Stats.Scanned)
	}
}

func TestQueryRulesAreAlternatives(t *testing.T) {
	be, events := buildStore(t, 100, store.Config{})
	res := run(t, be, "machine=1\nmachine=3", false)
	want := 0
	for _, e := range events {
		if e.Machine == 1 || e.Machine == 3 {
			want++
		}
	}
	if len(res.Events) != want {
		t.Fatalf("OR rules matched %d, want %d", len(res.Events), want)
	}
}

func TestQueryDiscardProjection(t *testing.T) {
	be, _ := buildStore(t, 40, store.Config{})
	// '#' keeps the record but drops the marked body field; header
	// fields are never dropped.
	res := run(t, be, "type=1, pid=#*, machine=#*", false)
	if len(res.Events) == 0 {
		t.Fatal("discard query matched nothing")
	}
	for _, e := range res.Events {
		if _, ok := e.Fields["pid"]; ok {
			t.Fatalf("pid survived '#' projection: %v", e.Fields)
		}
		if _, ok := e.Fields["sock"]; !ok {
			t.Fatal("unmarked field dropped")
		}
		if e.Machine == 0 {
			t.Fatal("header machine field zeroed by projection")
		}
		if e.Type != meter.EvSend {
			t.Fatalf("type!=SEND leaked: %v", e.Type)
		}
	}
}

func TestQueryFieldComparison(t *testing.T) {
	be, _ := buildStore(t, 40, store.Config{})
	// Field-to-field: msgLength >= sock holds for every synthetic event
	// (64+i vs 3); the reverse never does.
	if res := run(t, be, "msgLength>=sock", false); len(res.Events) != 40 {
		t.Fatalf("msgLength>=sock matched %d, want 40", len(res.Events))
	}
	if res := run(t, be, "sock>msgLength", false); len(res.Events) != 0 {
		t.Fatalf("sock>msgLength matched %d, want 0", len(res.Events))
	}
}

func TestQueryUnsealedSegmentScanned(t *testing.T) {
	// An active (unsealed) segment has no footer index; it must always
	// be scanned, never pruned, and still contribute matches.
	be := store.NewMemBackend()
	st, err := store.Open(be, store.Config{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		e := trace.Event{
			Type: meter.EvSend, Event: meter.EvSend.String(),
			Machine: 1, CPUTime: int64(i),
			Fields: map[string]uint64{"pid": 7},
			Names:  map[string]meter.Name{},
		}
		m := store.Meta{Machine: 1, Time: uint32(i), Type: uint32(meter.EvSend), PID: 7}
		if err := st.Append(m, e.Format()); err != nil {
			t.Fatal(err)
		}
	}
	// No Flush: the single segment stays unsealed.
	res := run(t, be, "cpuTime>=1000000", false)
	if res.Stats.Pruned != 0 {
		t.Fatal("unsealed segment was pruned")
	}
	if res.Stats.Scanned != 1 || res.Stats.Records != 10 {
		t.Fatalf("unsealed segment not scanned: %+v", res.Stats)
	}
	if len(res.Events) != 0 {
		t.Fatal("time filter failed on unsealed segment")
	}
}

func TestQueryBadLinesSkipped(t *testing.T) {
	be := store.NewMemBackend()
	st, err := store.Open(be, store.Config{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	good := trace.Event{
		Type: meter.EvSend, Event: meter.EvSend.String(), Machine: 1, CPUTime: 5,
		Fields: map[string]uint64{"pid": 7}, Names: map[string]meter.Name{},
	}
	if err := st.Append(store.Meta{Machine: 1, Time: 5, Type: 1, PID: 7}, good.Format()); err != nil {
		t.Fatal(err)
	}
	if err := st.Append(store.Meta{Machine: 1, Time: 6, Type: 1, PID: 7}, "NOT A TRACE LINE"); err != nil {
		t.Fatal(err)
	}
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	res := run(t, be, "", false)
	if len(res.Events) != 1 || res.Stats.BadLines != 1 {
		t.Fatalf("bad line handling: %d events, stats %+v", len(res.Events), res.Stats)
	}
}

func TestStatsString(t *testing.T) {
	s := Stats{Segments: 5, Scanned: 2, Pruned: 3, Records: 40, Matched: 7}
	want := "segments=5 scanned=2 pruned=3 records=40 matched=7"
	if s.String() != want {
		t.Fatalf("Stats.String() = %q, want %q", s.String(), want)
	}
}

func TestCompileRejectsBadRules(t *testing.T) {
	if _, err := Compile("machine~5"); err == nil {
		t.Fatal("bad operator accepted")
	}
	if _, err := Compile(fmt.Sprintf("machine=%s", "nonsense+")); err == nil {
		t.Fatal("bad right-hand side accepted")
	}
}
