//go:build !race

package query

// raceEnabled reports whether this test binary was built with the race
// detector. The parallel-memory gate skips under race: race-mode
// sync.Pools deliberately drop a fraction of Puts, so pooled-buffer
// reuse is not measurable there. The non-race CI step still enforces
// the gate on every push.
const raceEnabled = false
