package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"dpm/internal/fsys"
)

// Backend is the byte-level file interface a store runs over. Names
// are flat segment file names relative to the backend's root; Append
// must create a missing file. Three implementations cover the store's
// lives: FsysBackend inside the simulated cluster (filters and
// daemons), DirBackend on the host file system (offline querying with
// dpquery), and MemBackend for tests and benchmarks.
type Backend interface {
	Create(name string, data []byte) error
	Append(name string, data []byte) error
	Read(name string) ([]byte, error)
	Remove(name string) error
	// List returns the sorted segment file names present.
	List() ([]string, error)
}

// FsysBackend stores segments under a directory prefix of a simulated
// machine's file system, owned by uid — the store-side analogue of the
// filter's /usr/tmp log file.
type FsysBackend struct {
	fs  *fsys.FS
	uid int
	dir string // e.g. /usr/tmp/f1.store
}

// NewFsysBackend returns a backend rooted at dir on fs, acting as uid.
func NewFsysBackend(fs *fsys.FS, uid int, dir string) *FsysBackend {
	return &FsysBackend{fs: fs, uid: uid, dir: strings.TrimSuffix(dir, "/")}
}

func (b *FsysBackend) path(name string) string { return b.dir + "/" + name }

// Create implements Backend.
func (b *FsysBackend) Create(name string, data []byte) error {
	return b.fs.Create(b.path(name), b.uid, fsys.PrivateMode, data)
}

// Append implements Backend.
func (b *FsysBackend) Append(name string, data []byte) error {
	return b.fs.Append(b.path(name), b.uid, data)
}

// Read implements Backend.
func (b *FsysBackend) Read(name string) ([]byte, error) {
	return b.fs.Read(b.path(name), b.uid)
}

// Remove implements Backend.
func (b *FsysBackend) Remove(name string) error {
	return b.fs.Remove(b.path(name), b.uid)
}

// List implements Backend.
func (b *FsysBackend) List() ([]string, error) {
	prefix := b.dir + "/"
	var names []string
	for _, p := range b.fs.List(prefix) {
		names = append(names, strings.TrimPrefix(p, prefix))
	}
	return names, nil // fs.List sorts
}

// DirBackend stores segments as files in a host directory — the form a
// store takes once it has been copied out of the simulation for
// offline analysis with dpquery.
type DirBackend struct {
	root string
}

// NewDirBackend returns a backend over the given host directory.
func NewDirBackend(root string) *DirBackend { return &DirBackend{root: root} }

func (b *DirBackend) path(name string) (string, error) {
	if name == "" || strings.ContainsAny(name, "/\\") || strings.HasPrefix(name, ".") {
		return "", fmt.Errorf("store: bad segment name %q", name)
	}
	return filepath.Join(b.root, name), nil
}

// Create implements Backend.
func (b *DirBackend) Create(name string, data []byte) error {
	p, err := b.path(name)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(b.root, 0o755); err != nil {
		return err
	}
	return os.WriteFile(p, data, 0o644)
}

// Append implements Backend.
func (b *DirBackend) Append(name string, data []byte) error {
	p, err := b.path(name)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(b.root, 0o755); err != nil {
		return err
	}
	f, err := os.OpenFile(p, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

// Read implements Backend.
func (b *DirBackend) Read(name string) ([]byte, error) {
	p, err := b.path(name)
	if err != nil {
		return nil, err
	}
	return os.ReadFile(p)
}

// Remove implements Backend.
func (b *DirBackend) Remove(name string) error {
	p, err := b.path(name)
	if err != nil {
		return err
	}
	return os.Remove(p)
}

// List implements Backend.
func (b *DirBackend) List() ([]string, error) {
	entries, err := os.ReadDir(b.root)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// MemBackend is an in-memory backend for tests and benchmarks.
type MemBackend struct {
	mu    sync.Mutex
	files map[string][]byte
}

// NewMemBackend returns an empty in-memory backend.
func NewMemBackend() *MemBackend { return &MemBackend{files: make(map[string][]byte)} }

// Create implements Backend.
func (b *MemBackend) Create(name string, data []byte) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.files[name] = append([]byte(nil), data...)
	return nil
}

// Append implements Backend.
func (b *MemBackend) Append(name string, data []byte) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.files[name] = append(b.files[name], data...)
	return nil
}

// Read implements Backend.
func (b *MemBackend) Read(name string) ([]byte, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	data, ok := b.files[name]
	if !ok {
		return nil, fmt.Errorf("store: no segment %q", name)
	}
	return append([]byte(nil), data...), nil
}

// Remove implements Backend.
func (b *MemBackend) Remove(name string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.files[name]; !ok {
		return fmt.Errorf("store: no segment %q", name)
	}
	delete(b.files, name)
	return nil
}

// List implements Backend.
func (b *MemBackend) List() ([]string, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	names := make([]string, 0, len(b.files))
	for n := range b.files {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}
