package store

import (
	"fmt"
	"testing"
)

func batchRecs(n int) []BatchRec {
	recs := make([]BatchRec, 0, n)
	for i := 0; i < n; i++ {
		m, line := rec(uint16(i%4), uint32(i*10), uint32(i%8+1), uint32(100+i%4),
			fmt.Sprintf("line %d payload padding to some reasonable width", i))
		recs = append(recs, BatchRec{Meta: m, Line: []byte(line)})
	}
	return recs
}

// TestAppendBatchMatchesSequential proves a batched ingest leaves the
// store byte-equivalent (per record) to appending the same records one
// at a time: same records read back, same stats.
func TestAppendBatchMatchesSequential(t *testing.T) {
	recs := batchRecs(200)

	seqBE := NewMemBackend()
	seq, err := Open(seqBE, Config{Shards: 2, SegmentCap: 1024})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := seq.Append(r.Meta, string(r.Line)); err != nil {
			t.Fatal(err)
		}
	}
	if err := seq.Flush(); err != nil {
		t.Fatal(err)
	}

	batBE := NewMemBackend()
	bat, err := Open(batBE, Config{Shards: 2, SegmentCap: 1024})
	if err != nil {
		t.Fatal(err)
	}
	// Several flush-sized batches, as the filter's Recv loop produces.
	for off := 0; off < len(recs); off += 16 {
		end := off + 16
		if end > len(recs) {
			end = len(recs)
		}
		if err := bat.AppendBatch(recs[off:end]); err != nil {
			t.Fatal(err)
		}
	}
	if err := bat.Flush(); err != nil {
		t.Fatal(err)
	}

	key := func(r Rec) string {
		return fmt.Sprintf("%d/%d/%d/%d/%s", r.Meta.Machine, r.Meta.Time, r.Meta.Type, r.Meta.PID, r.Line)
	}
	seqRecs, batRecs := allRecs(t, seqBE), allRecs(t, batBE)
	if len(seqRecs) != len(batRecs) {
		t.Fatalf("sequential store has %d records, batched %d", len(seqRecs), len(batRecs))
	}
	seen := make(map[string]int)
	for _, r := range seqRecs {
		seen[key(r)]++
	}
	for _, r := range batRecs {
		if seen[key(r)] == 0 {
			t.Fatalf("batched store has unexpected record %q", key(r))
		}
		seen[key(r)]--
	}
	ss, bs := seq.Stats(), bat.Stats()
	if ss.Appends != bs.Appends {
		t.Fatalf("appends: sequential %d, batched %d", ss.Appends, bs.Appends)
	}
}

// TestAppendBatchRotation drives a batch well past the segment cap and
// checks segments seal and read back clean.
func TestAppendBatchRotation(t *testing.T) {
	be := NewMemBackend()
	st, err := Open(be, Config{Shards: 1, SegmentCap: 512})
	if err != nil {
		t.Fatal(err)
	}
	recs := batchRecs(100)
	if err := st.AppendBatch(recs); err != nil {
		t.Fatal(err)
	}
	if st.Stats().Rotations == 0 {
		t.Fatal("no rotations despite tiny segment cap")
	}
	got := allRecs(t, be)
	if len(got) != len(recs) {
		t.Fatalf("read back %d records, want %d", len(got), len(recs))
	}
}

// TestAppendBatchReusesCallerBuffer checks AppendBatch does not retain
// the caller's line memory: mutating the buffer afterwards must not
// corrupt the store.
func TestAppendBatchReusesCallerBuffer(t *testing.T) {
	be := NewMemBackend()
	st, err := Open(be, Config{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	line := []byte("first line contents")
	if err := st.AppendBatch([]BatchRec{{Meta: Meta{Machine: 1, Time: 5}, Line: line}}); err != nil {
		t.Fatal(err)
	}
	copy(line, "CLOBBERED!!")
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	got := allRecs(t, be)
	if len(got) != 1 || got[0].Line != "first line contents" {
		t.Fatalf("read back %+v, want the original line", got)
	}
}

// TestAppendFrameZeroAlloc guards the in-place framing: with dst at
// capacity a frame append must not allocate.
func TestAppendFrameZeroAlloc(t *testing.T) {
	m := Meta{Machine: 3, Time: 77, Type: 1, PID: 42}
	line := []byte("SEND machine=3 cpuTime=77 procTime=0 pid=42")
	dst := make([]byte, 0, 4096)
	if n := testing.AllocsPerRun(200, func() {
		dst = AppendFrameBytes(dst[:0], m, line)
	}); n != 0 {
		t.Fatalf("AppendFrameBytes allocates %v per frame, want 0", n)
	}
}
