// Compressed (version 2) segments. Meter records are highly
// repetitive — a handful of event names, monotone cpuTime clocks,
// near-identical lines per event type — so sealed segments compress
// far better than the v1 CRC-framed text if the encoder exploits that
// structure before the byte-level compressor sees it:
//
//   - Records are grouped into *blocks* of ~BlockTarget (v1-equivalent)
//     bytes. Each block is one independent DEFLATE stream, so a reader
//     can decompress exactly the blocks a query admits.
//   - Within a block, each record is delta/varint encoded: machine,
//     zigzag(cpuTime delta), type, pid, then the line front-coded
//     against the previous line of the same type slot (shared prefix
//     and suffix lengths plus a middle section).
//   - Middle sections encode through a per-segment shared-name
//     dictionary: tokens (words, key= prefixes) that recur across
//     records become one- or two-byte references. Definitions are
//     carried in-stream (so an unsealed segment is self-describing for
//     salvage) and repeated in the footer (so a sealed reader can
//     decode any block without replaying the ones before it).
//   - The sealed footer carries a per-block table — offset, compressed
//     and raw lengths, a CRC over the compressed bytes, and a zone map
//     (the same Index as the v1 footer, per block) — so internal/query
//     prunes at block granularity, not just whole segments.
//
// Durability matches the v1 path: every flush ends with a DEFLATE sync
// marker, so everything a backend Append carried is decodable even if
// the writer dies before sealing; the block boundaries of a torn
// segment are recovered by walking the concatenated streams (a
// bytes.Reader hands DEFLATE exactly the bytes it needs, so stream
// ends land on stream starts).
//
// File layout:
//
//	[8B header: "DPMZ" + reserved u32]
//	[block 0: one DEFLATE stream][block 1] ... [block n-1]
//	[footer body: dictionary entries + block table, varint encoded]
//	[72B footer tail: "DPMS" v2, segment index, lengths, CRCs]
//
// The tail shares its first 48 bytes with the v1 footer but is 72
// bytes with version 2, so v1 readers reject it cleanly (magic lands
// in the wrong place for a 56-byte parse) and v2 readers find the body
// by the dataLen/bodyLen fields.
package store

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"sync"
)

// CompressMode selects the on-disk encoding a store writes.
type CompressMode int

const (
	// CompressOff writes v1 CRC-framed segments (the default).
	CompressOff CompressMode = iota
	// CompressBlocks writes v2 block-compressed segments.
	CompressBlocks
)

const (
	segMagicV2      = "DPMZ"
	headerV2Size    = 8
	footerVersionV2 = 2

	// FooterV2Size is the fixed tail of a sealed v2 segment; the
	// variable-length footer body (dictionary + block table) precedes it.
	FooterV2Size = 72

	// DefaultBlockTarget is the v1-equivalent byte size at which a block
	// closes and the next DEFLATE stream starts.
	DefaultBlockTarget = 64 << 10

	// nameSlots is the number of previous-line slots used for
	// front-coding, keyed by Type%nameSlots: consecutive records of the
	// same event type are near-identical even when types interleave.
	nameSlots = 16

	// Dictionary limits: at most maxDictEntries tokens of
	// [minDictToken, maxDictToken] bytes each per segment.
	maxDictEntries = 512
	minDictToken   = 2
	maxDictToken   = 48

	// maxBlockRaw bounds a block's declared decoded size; larger values
	// in a footer are corruption, not data.
	maxBlockRaw = 1 << 26
)

// Middle-section opcodes. Values >= opRefBase are dictionary
// references (id = op - opRefBase).
const (
	opEnd     = 0
	opLit     = 1
	opDef     = 2
	opRefBase = 3
)

func zigzag(v int64) uint64   { return uint64((v << 1) ^ (v >> 63)) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// uvarintAt decodes one uvarint at off, returning the value and the
// new offset. A plain function (not a closure over off) so the hot
// decode loop allocates nothing.
func uvarintAt(raw []byte, off int) (uint64, int, bool) {
	v, n := binary.Uvarint(raw[off:])
	if n <= 0 {
		return 0, off, false
	}
	return v, off + n, true
}

// BlockInfo describes one block of a sealed v2 segment.
type BlockInfo struct {
	// Off is the block's byte offset from the end of the file header;
	// CompLen its compressed length; RawLen its decoded payload length.
	Off, CompLen, RawLen int
	// CRC is the IEEE CRC over the compressed bytes.
	CRC uint32
	// Index is the block's zone map: the same conservative summary a v1
	// footer carries for a whole segment, scoped to this block.
	Index Index
}

// footerV2 is a parsed v2 footer.
type footerV2 struct {
	Index    Index
	DataLen  int // header + block bytes; the footer body starts here
	RawTotal int // v1-equivalent bytes of the whole segment
	Dict     [][]byte
	Blocks   []BlockInfo
}

// compSink accumulates the writer's DEFLATE output pending a backend
// append, keeping a running CRC of the current block's bytes.
type compSink struct {
	buf   []byte
	crc   uint32
	total int // block-region bytes emitted so far (header excluded)
}

func (cs *compSink) Write(p []byte) (int, error) {
	cs.buf = append(cs.buf, p...)
	cs.crc = crc32.Update(cs.crc, crc32.IEEETable, p)
	cs.total += len(p)
	return len(p), nil
}

// compWriter is the per-shard v2 segment encoder. All state is guarded
// by the owning shard's mutex. Records are staged (delta/front-coded)
// into enc as they arrive and pushed through the DEFLATE stream at
// flush time, so compression cost is paid incrementally on the ingest
// path instead of as a seal-time rewrite.
type compWriter struct {
	level  int
	target int

	sink compSink
	fw   *flate.Writer

	// Staged-but-unflushed state: the encoded payload, its
	// v1-equivalent size, and the record count (metadata is in the
	// shard's pending slice).
	enc      []byte
	stagedV1 int
	stagedN  int

	// Current block accumulation (flushed records only).
	curIdx Index
	curOff int
	curRaw int // decoded payload bytes written this block
	curV1  int // v1-equivalent bytes written this block

	blocks []blockMeta

	dictIDs     map[string]int
	dictEntries [][]byte

	prev     [nameSlots][]byte
	prevTime uint32

	lineBuf []byte // string→[]byte staging for the single-record path
}

type blockMeta struct {
	off, compLen, rawLen int
	crc                  uint32
	idx                  Index
}

// newCompWriter builds a v2 encoder. Level 0 (the online default) is
// flate.NoCompression: the structural encoding — front-coding, shared
// dictionary, delta/varint — has already squeezed the records ~7x, and
// DEFLATE entropy coding over that dense payload buys little while a
// dynamic-Huffman build per sync flush costs ~3x the whole ingest
// path. Stored flate blocks keep the sync-marker durability contract
// for free; the archival tier re-encodes cold segments at
// BestCompression where the cost is paid once, off the hot path.
func newCompWriter(level, target int) *compWriter {
	if target <= 0 {
		target = DefaultBlockTarget
	}
	w := &compWriter{level: level, target: target}
	w.fw, _ = flate.NewWriter(&w.sink, level)
	return w
}

// openSegment resets the writer for a fresh segment and stages the
// file header.
func (w *compWriter) openSegment() {
	w.sink.buf = append(w.sink.buf[:0], segMagicV2...)
	w.sink.buf = append(w.sink.buf, 0, 0, 0, 0)
	w.sink.crc, w.sink.total = 0, 0
	w.fw.Reset(&w.sink)
	w.enc = w.enc[:0]
	w.stagedV1, w.stagedN = 0, 0
	w.curIdx, w.curOff, w.curRaw, w.curV1 = Index{}, 0, 0, 0
	w.blocks = w.blocks[:0]
	if w.dictIDs == nil {
		w.dictIDs = make(map[string]int)
	} else {
		clear(w.dictIDs)
	}
	w.dictEntries = w.dictEntries[:0]
	w.resetBlockCoding()
}

func (w *compWriter) resetBlockCoding() {
	for i := range w.prev {
		w.prev[i] = w.prev[i][:0]
	}
	w.prevTime = 0
}

// closeBlock finishes the current DEFLATE stream and records the
// block's table entry. No-op on an empty block.
func (w *compWriter) closeBlock() error {
	if w.curRaw == 0 {
		return nil
	}
	if err := w.fw.Close(); err != nil {
		return err
	}
	w.blocks = append(w.blocks, blockMeta{
		off: w.curOff, compLen: w.sink.total - w.curOff,
		rawLen: w.curRaw, crc: w.sink.crc, idx: w.curIdx,
	})
	w.curOff = w.sink.total
	w.curRaw, w.curV1 = 0, 0
	w.curIdx = Index{}
	w.sink.crc = 0
	w.fw.Reset(&w.sink)
	w.resetBlockCoding()
	return nil
}

// stage delta/front-codes one record into the staging buffer. The
// block boundary is checked only when nothing is staged, so encoder
// and decoder agree on where front-coding state resets.
func (w *compWriter) stage(m Meta, line []byte) error {
	if w.stagedN == 0 && w.curV1 >= w.target {
		if err := w.closeBlock(); err != nil {
			return err
		}
	}
	e := w.enc
	e = binary.AppendUvarint(e, uint64(m.Machine))
	e = binary.AppendUvarint(e, zigzag(int64(m.Time)-int64(w.prevTime)))
	w.prevTime = m.Time
	e = binary.AppendUvarint(e, uint64(m.Type))
	e = binary.AppendUvarint(e, uint64(m.PID))

	slot := int(m.Type) % nameSlots
	prev := w.prev[slot]
	p := commonPrefix(prev, line)
	s := commonSuffix(prev[p:], line[p:])
	mid := line[p : len(line)-s]
	e = binary.AppendUvarint(e, uint64(p))
	e = binary.AppendUvarint(e, uint64(s))
	if len(mid)*2 > len(line) {
		// Front-coding bought little (a first record, or a reordered
		// line): tokenize the middle through the shared dictionary.
		e = w.encodeTokens(e, mid)
	} else if len(mid) > 0 {
		e = append(e, opLit)
		e = binary.AppendUvarint(e, uint64(len(mid)))
		e = append(e, mid...)
	}
	e = append(e, opEnd)
	w.enc = e
	w.prev[slot] = append(w.prev[slot][:0], line...)
	w.stagedV1 += FrameSize(len(line))
	w.stagedN++
	return nil
}

func commonPrefix(a, b []byte) int {
	n := min(len(a), len(b))
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	return i
}

func commonSuffix(a, b []byte) int {
	n := min(len(a), len(b))
	i := 0
	for i < n && a[len(a)-1-i] == b[len(b)-1-i] {
		i++
	}
	return i
}

// encodeTokens emits mid as a sequence of literal runs and dictionary
// references/definitions. Tokens are space-run + word units; a token
// containing '=' splits into a key (through the '=', a strong
// dictionary candidate: field names recur on every record) and a
// value.
func (w *compWriter) encodeTokens(e []byte, mid []byte) []byte {
	lit := 0 // start of the pending literal run
	flushLit := func(end int) {
		if end > lit {
			e = append(e, opLit)
			e = binary.AppendUvarint(e, uint64(end-lit))
			e = append(e, mid[lit:end]...)
		}
	}
	// tryTok emits mid[start:end] as a dictionary ref (defining it on
	// first sight when it qualifies); false leaves it in the pending
	// literal run.
	tryTok := func(start, end int) {
		tok := mid[start:end]
		if len(tok) < minDictToken || len(tok) > maxDictToken {
			return
		}
		if id, ok := w.dictIDs[string(tok)]; ok {
			flushLit(start)
			e = binary.AppendUvarint(e, uint64(opRefBase+id))
			lit = end
			return
		}
		if len(w.dictEntries) >= maxDictEntries {
			return
		}
		cp := append([]byte(nil), tok...)
		w.dictIDs[string(cp)] = len(w.dictEntries)
		w.dictEntries = append(w.dictEntries, cp)
		flushLit(start)
		e = append(e, opDef)
		e = binary.AppendUvarint(e, uint64(len(cp)))
		e = append(e, cp...)
		lit = end
	}
	i := 0
	for i < len(mid) {
		j := i
		for j < len(mid) && mid[j] == ' ' {
			j++
		}
		for j < len(mid) && mid[j] != ' ' {
			j++
		}
		if k := bytes.IndexByte(mid[i:j], '='); k >= 0 {
			tryTok(i, i+k+1) // key, leading spaces and '=' included
			if j-(i+k+1) >= 4 {
				tryTok(i+k+1, j) // value, when long enough to pay
			}
		} else {
			tryTok(i, j)
		}
		i = j
	}
	flushLit(len(mid))
	return e
}

// flushStaged pushes the staged payload through the DEFLATE stream;
// with sync it ends on a sync marker so the bytes now in the sink form
// a decodable prefix. The caller owns writing sink.buf to the backend
// and folding the pending metadata into the block/segment indexes.
func (w *compWriter) flushStaged(sync bool) error {
	if len(w.enc) > 0 {
		if _, err := w.fw.Write(w.enc); err != nil {
			return err
		}
	}
	if sync {
		if err := w.fw.Flush(); err != nil {
			return err
		}
	}
	w.curRaw += len(w.enc)
	w.curV1 += w.stagedV1
	w.enc = w.enc[:0]
	w.stagedV1, w.stagedN = 0, 0
	return nil
}

// foldMeta folds one flushed record's metadata into the current
// block's zone map.
func (w *compWriter) foldMeta(m Meta) { w.curIdx.Add(m) }

// seal closes the open block and returns the remaining unwritten bytes
// of the segment — pending block output plus the footer — and the
// total on-disk size of the sealed file.
func (w *compWriter) seal(x Index, rawTotal int) ([]byte, int, error) {
	if err := w.closeBlock(); err != nil {
		return nil, 0, err
	}
	dataLen := headerV2Size + w.sink.total
	disk := dataLen + footerV2Len(w.dictEntries, w.blocks)
	out := appendFooterV2(w.sink.buf, x, uint32(dataLen), uint32(rawTotal), w.dictEntries, w.blocks)
	w.sink.buf = nil // ownership passes to the caller's backend write
	return out, disk, nil
}

func footerV2Len(dict [][]byte, blocks []blockMeta) int {
	n := uvarintLen(uint64(len(dict)))
	for _, e := range dict {
		n += uvarintLen(uint64(len(e))) + len(e)
	}
	for _, b := range blocks {
		n += uvarintLen(uint64(b.off)) + uvarintLen(uint64(b.compLen)) + uvarintLen(uint64(b.rawLen)) + 4
		n += uvarintLen(uint64(b.idx.Count)) + uvarintLen(b.idx.MinTime) + uvarintLen(b.idx.MaxTime) + 8 + 8 + 4
	}
	return n + FooterV2Size
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// appendFooterV2 appends the footer body (dictionary + block table)
// and the fixed tail.
func appendFooterV2(dst []byte, x Index, dataLen, rawTotal uint32, dict [][]byte, blocks []blockMeta) []byte {
	le := binary.LittleEndian
	bodyStart := len(dst)
	dst = binary.AppendUvarint(dst, uint64(len(dict)))
	for _, e := range dict {
		dst = binary.AppendUvarint(dst, uint64(len(e)))
		dst = append(dst, e...)
	}
	for _, b := range blocks {
		dst = binary.AppendUvarint(dst, uint64(b.off))
		dst = binary.AppendUvarint(dst, uint64(b.compLen))
		dst = binary.AppendUvarint(dst, uint64(b.rawLen))
		dst = le.AppendUint32(dst, b.crc)
		dst = binary.AppendUvarint(dst, uint64(b.idx.Count))
		dst = binary.AppendUvarint(dst, b.idx.MinTime)
		dst = binary.AppendUvarint(dst, b.idx.MaxTime)
		dst = le.AppendUint64(dst, b.idx.Machines)
		dst = le.AppendUint64(dst, b.idx.PIDs)
		dst = le.AppendUint32(dst, b.idx.Types)
	}
	bodyCRC := crc32.ChecksumIEEE(dst[bodyStart:])
	bodyLen := len(dst) - bodyStart
	var t [FooterV2Size]byte
	copy(t[0:4], footerMagic)
	le.PutUint32(t[4:8], footerVersionV2)
	le.PutUint32(t[8:12], x.Count)
	le.PutUint64(t[12:20], x.MinTime)
	le.PutUint64(t[20:28], x.MaxTime)
	le.PutUint64(t[28:36], x.Machines)
	le.PutUint64(t[36:44], x.PIDs)
	le.PutUint32(t[44:48], x.Types)
	le.PutUint32(t[48:52], dataLen)
	le.PutUint32(t[52:56], uint32(bodyLen))
	le.PutUint32(t[56:60], uint32(len(blocks)))
	le.PutUint32(t[60:64], rawTotal)
	le.PutUint32(t[64:68], bodyCRC)
	le.PutUint32(t[68:72], crc32.ChecksumIEEE(t[:68]))
	return append(dst, t[:]...)
}

// parseFooterV2 examines a segment file for a valid v2 footer.
// ok=false means "not a sealed v2 segment" — unsealed, v1, or a
// mangled footer (which degrades to stream salvage, as a mangled v1
// footer degrades to a frame scan).
func parseFooterV2(data []byte) (*footerV2, bool) {
	if len(data) < headerV2Size+FooterV2Size || string(data[0:4]) != segMagicV2 {
		return nil, false
	}
	le := binary.LittleEndian
	t := data[len(data)-FooterV2Size:]
	if string(t[0:4]) != footerMagic || le.Uint32(t[4:8]) != footerVersionV2 {
		return nil, false
	}
	if crc32.ChecksumIEEE(t[:68]) != le.Uint32(t[68:72]) {
		return nil, false
	}
	f := &footerV2{
		DataLen:  int(le.Uint32(t[48:52])),
		RawTotal: int(le.Uint32(t[60:64])),
	}
	f.Index.Count = le.Uint32(t[8:12])
	f.Index.MinTime = le.Uint64(t[12:20])
	f.Index.MaxTime = le.Uint64(t[20:28])
	f.Index.Machines = le.Uint64(t[28:36])
	f.Index.PIDs = le.Uint64(t[36:44])
	f.Index.Types = le.Uint32(t[44:48])
	bodyLen := int(le.Uint32(t[52:56]))
	blockCount := int(le.Uint32(t[56:60]))
	if f.DataLen < headerV2Size || f.DataLen+bodyLen+FooterV2Size != len(data) {
		return nil, false
	}
	body := data[f.DataLen : f.DataLen+bodyLen]
	if crc32.ChecksumIEEE(body) != le.Uint32(t[64:68]) {
		return nil, false
	}
	// Decode the body. Any malformation fails the parse (degrading the
	// file to stream salvage) rather than risking a bad table.
	off := 0
	next := func() (uint64, bool) {
		v, n := binary.Uvarint(body[off:])
		if n <= 0 {
			return 0, false
		}
		off += n
		return v, true
	}
	nd, ok := next()
	if !ok || nd > maxDictEntries {
		return nil, false
	}
	f.Dict = make([][]byte, 0, nd)
	for i := 0; i < int(nd); i++ {
		l, ok := next()
		if !ok || l > maxDictToken || off+int(l) > len(body) {
			return nil, false
		}
		f.Dict = append(f.Dict, body[off:off+int(l)])
		off += int(l)
	}
	if blockCount < 0 || blockCount > len(body) {
		return nil, false
	}
	region := f.DataLen - headerV2Size
	f.Blocks = make([]BlockInfo, 0, blockCount)
	for i := 0; i < blockCount; i++ {
		var b BlockInfo
		var v uint64
		if v, ok = next(); !ok {
			return nil, false
		}
		b.Off = int(v)
		if v, ok = next(); !ok {
			return nil, false
		}
		b.CompLen = int(v)
		if v, ok = next(); !ok {
			return nil, false
		}
		b.RawLen = int(v)
		if off+4 > len(body) {
			return nil, false
		}
		b.CRC = le.Uint32(body[off:])
		off += 4
		if v, ok = next(); !ok {
			return nil, false
		}
		b.Index.Count = uint32(v)
		if b.Index.MinTime, ok = next(); !ok {
			return nil, false
		}
		if b.Index.MaxTime, ok = next(); !ok {
			return nil, false
		}
		if off+20 > len(body) {
			return nil, false
		}
		b.Index.Machines = le.Uint64(body[off:])
		b.Index.PIDs = le.Uint64(body[off+8:])
		b.Index.Types = le.Uint32(body[off+16:])
		off += 20
		// Off is bounded before the subtraction so the block-extent test
		// is overflow-free — a crafted table passes the footer CRCs (they
		// live in the file), so a wrapped Off+CompLen sum would otherwise
		// reach the region slicing in Scan.
		if b.Off < 0 || b.CompLen < 0 || b.Off > region || b.CompLen > region-b.Off ||
			b.RawLen <= 0 || b.RawLen > maxBlockRaw {
			return nil, false
		}
		f.Blocks = append(f.Blocks, b)
	}
	if off != len(body) {
		return nil, false
	}
	return f, true
}

// Decoder decompresses and decodes v2 blocks through reused buffers: a
// warmed decoder allocates nothing per block. Decoders are not safe
// for concurrent use; Acquire one per goroutine.
type Decoder struct {
	br       bytes.Reader
	zr       io.ReadCloser
	zres     flate.Resetter
	raw      []byte
	line     []byte
	one      [1]byte // over-read probe; a field so it never escapes
	prev     [nameSlots][]byte
	dict     [][]byte
	dictBuf  [][]byte // decoder-owned grow-mode backing array; see decodeStreams
	growDict bool
}

var decoderPool = sync.Pool{New: func() any { return newDecoder() }}

// AcquireDecoder returns a pooled decoder; pair with ReleaseDecoder.
func AcquireDecoder() *Decoder { return decoderPool.Get().(*Decoder) }

// ReleaseDecoder returns a decoder to the pool. Lines handed to scan
// callbacks alias the decoder's buffers and must not be retained past
// release.
func ReleaseDecoder(d *Decoder) { decoderPool.Put(d) }

func newDecoder() *Decoder {
	d := &Decoder{}
	d.zr = flate.NewReader(&d.br)
	d.zres = d.zr.(flate.Resetter)
	return d
}

func (d *Decoder) resetBlockCoding() {
	for i := range d.prev {
		d.prev[i] = d.prev[i][:0]
	}
}

// decodeBlock decompresses one sealed block (checking its CRC and
// declared raw length) and emits its records. The line passed to fn is
// reused; callers must copy what they keep.
func (d *Decoder) decodeBlock(comp []byte, rawLen int, crc uint32, dict [][]byte, fn func(Meta, []byte)) (int, error) {
	if crc32.ChecksumIEEE(comp) != crc {
		return 0, fmt.Errorf("block checksum mismatch")
	}
	if rawLen <= 0 || rawLen > maxBlockRaw {
		return 0, fmt.Errorf("bad block raw length %d", rawLen)
	}
	d.br.Reset(comp)
	if err := d.zres.Reset(&d.br, nil); err != nil {
		return 0, err
	}
	if cap(d.raw) < rawLen {
		d.raw = make([]byte, rawLen)
	}
	raw := d.raw[:rawLen]
	if _, err := io.ReadFull(d.zr, raw); err != nil {
		return 0, fmt.Errorf("block decompress: %v", err)
	}
	if n, err := d.zr.Read(d.one[:]); n != 0 || (err != nil && err != io.EOF) {
		return 0, fmt.Errorf("block longer than declared")
	}
	d.dict, d.growDict = dict, false
	d.resetBlockCoding()
	n, consumed, err := d.decodeRecords(raw, fn)
	if err == nil && consumed != len(raw) {
		err = fmt.Errorf("%d trailing bytes in block payload", len(raw)-consumed)
	}
	return n, err
}

// decodeStreams walks the concatenated DEFLATE streams of an unsealed
// v2 segment (everything after the file header), growing the
// dictionary from in-stream definitions, and emits every cleanly
// decodable record. A torn tail — a stream or record cut mid-write —
// returns the count emitted so far with a non-nil error describing the
// tear; the records already emitted are the recoverable prefix.
func (d *Decoder) decodeStreams(data []byte, fn func(Meta, []byte)) (int, int, error) {
	d.br.Reset(data)
	// Grow into the decoder-OWNED backing array, never into whatever
	// d.dict last aliased: after a sealed-block decode it points at a
	// segment's shared footer dictionary, and appending through it
	// would overwrite entries that concurrent scans of that segment
	// are still reading.
	d.dict = d.dictBuf[:0]
	d.growDict = true
	total, streams := 0, 0
	for d.br.Len() > 0 {
		if err := d.zres.Reset(&d.br, nil); err != nil {
			return total, streams, err
		}
		raw, rerr := d.readStream()
		streams++
		d.resetBlockCoding()
		n, consumed, derr := d.decodeRecords(raw, fn)
		d.dictBuf = d.dict[:0] // retain capacity grown inside decodeRecords
		total += n
		if derr != nil {
			return total, streams, derr
		}
		if consumed != len(raw) {
			return total, streams, fmt.Errorf("%d trailing bytes in stream %d", len(raw)-consumed, streams-1)
		}
		if rerr != nil {
			// The stream itself tore (no terminator): everything it
			// yielded decoded cleanly, but nothing can follow it.
			if d.br.Len() > 0 {
				return total, streams, rerr
			}
			return total, streams, nil
		}
	}
	return total, streams, nil
}

// readStream drains the current DEFLATE stream into the reused raw
// buffer. err is non-nil when the stream ends without a terminator (a
// torn tail); the returned bytes are still the stream's decodable
// prefix.
func (d *Decoder) readStream() ([]byte, error) {
	raw := d.raw[:0]
	for {
		if len(raw) == cap(raw) {
			raw = append(raw, 0)[:len(raw)]
		}
		n, err := d.zr.Read(raw[len(raw):cap(raw)])
		raw = raw[:len(raw)+n]
		if err == io.EOF {
			d.raw = raw
			return raw, nil
		}
		if err != nil {
			d.raw = raw
			return raw, err
		}
		if len(raw) > maxBlockRaw {
			d.raw = raw
			return raw, fmt.Errorf("stream exceeds %d decoded bytes", maxBlockRaw)
		}
	}
}

// decodeRecords decodes the records of one block payload, emitting
// each through fn. It returns the number emitted and the bytes
// consumed; a malformed record stops the decode at its start.
func (d *Decoder) decodeRecords(raw []byte, fn func(Meta, []byte)) (int, int, error) {
	var prevTime uint32
	off, emitted := 0, 0
	var ok bool
	for off < len(raw) {
		start := off
		var machine, dtv, typ, pid, p, s uint64
		if machine, off, ok = uvarintAt(raw, off); !ok || machine > 0xFFFF {
			return emitted, start, fmt.Errorf("bad machine at payload offset %d", start)
		}
		if dtv, off, ok = uvarintAt(raw, off); !ok {
			return emitted, start, fmt.Errorf("bad time delta at payload offset %d", start)
		}
		t := int64(prevTime) + unzigzag(dtv)
		if t < 0 || t > 0xFFFFFFFF {
			return emitted, start, fmt.Errorf("time out of range at payload offset %d", start)
		}
		if typ, off, ok = uvarintAt(raw, off); !ok || typ > 0xFFFFFFFF {
			return emitted, start, fmt.Errorf("bad type at payload offset %d", start)
		}
		if pid, off, ok = uvarintAt(raw, off); !ok || pid > 0xFFFFFFFF {
			return emitted, start, fmt.Errorf("bad pid at payload offset %d", start)
		}
		if p, off, ok = uvarintAt(raw, off); !ok {
			return emitted, start, fmt.Errorf("bad prefix length at payload offset %d", start)
		}
		if s, off, ok = uvarintAt(raw, off); !ok {
			return emitted, start, fmt.Errorf("bad suffix length at payload offset %d", start)
		}
		slot := int(typ) % nameSlots
		prev := d.prev[slot]
		// p and s are bounded individually before summing so p+s cannot
		// wrap uint64 and slip past the range checks.
		if p > MaxFrameSize || s > MaxFrameSize || p+s > uint64(len(prev)) || p+s > MaxFrameSize {
			return emitted, start, fmt.Errorf("front-coding overrun at payload offset %d", start)
		}
		line := d.line[:0]
		line = append(line, prev[:p]...)
		for {
			var op uint64
			if op, off, ok = uvarintAt(raw, off); !ok {
				return emitted, start, fmt.Errorf("bad opcode at payload offset %d", start)
			}
			if op == opEnd {
				break
			}
			switch {
			case op == opLit || op == opDef:
				var l uint64
				if l, off, ok = uvarintAt(raw, off); !ok || off+int(l) > len(raw) || l > MaxFrameSize {
					return emitted, start, fmt.Errorf("bad literal at payload offset %d", start)
				}
				b := raw[off : off+int(l)]
				off += int(l)
				line = append(line, b...)
				if op == opDef {
					if d.growDict {
						if len(d.dict) >= maxDictEntries || l < minDictToken || l > maxDictToken {
							return emitted, start, fmt.Errorf("bad dictionary definition at payload offset %d", start)
						}
						d.dict = append(d.dict, append([]byte(nil), b...))
					}
					// With a preloaded (footer) dictionary the entry is
					// already present; the definition just emits.
				}
			default:
				id := int(op) - opRefBase
				if id >= len(d.dict) {
					return emitted, start, fmt.Errorf("dictionary reference %d out of range at payload offset %d", id, start)
				}
				line = append(line, d.dict[id]...)
			}
			if len(line) > MaxFrameSize {
				return emitted, start, fmt.Errorf("line overruns frame limit at payload offset %d", start)
			}
		}
		line = append(line, prev[uint64(len(prev))-s:]...)
		m := Meta{Machine: uint16(machine), Time: uint32(t), Type: uint32(typ), PID: uint32(pid)}
		prevTime = m.Time
		fn(m, line)
		emitted++
		d.prev[slot], d.line = line, prev
	}
	return emitted, len(raw), nil
}

// ScanStats reports what one segment scan did.
type ScanStats struct {
	Blocks       int // blocks (or streams, or one pseudo-block for v1) visited
	BlocksPruned int // blocks skipped on zone-map evidence
	Records      int // records emitted
}

// Scan streams a segment's records through fn without materializing
// them: v2 sealed segments decompress only the blocks admit accepts
// (nil admit scans everything), v1 segments walk their frames with
// lines aliasing the mapped file, and unsealed segments of either
// version salvage their valid prefix before reporting ErrTruncated.
// Corruption of a sealed segment returns ErrCorrupt after emitting the
// blocks (or frames) preceding the damage. The line passed to fn is
// only valid during the call.
func (rs *ReaderSegment) Scan(d *Decoder, admit func(Index) bool, fn func(Meta, []byte)) (ScanStats, error) {
	var st ScanStats
	if rs.v2 != nil {
		region := rs.data[headerV2Size:rs.v2.DataLen]
		for i := range rs.v2.Blocks {
			b := &rs.v2.Blocks[i]
			st.Blocks++
			if admit != nil && !admit(b.Index) {
				st.BlocksPruned++
				continue
			}
			n, err := d.decodeBlock(region[b.Off:b.Off+b.CompLen], b.RawLen, b.CRC, rs.v2.Dict, fn)
			st.Records += n
			if err != nil {
				return st, fmt.Errorf("%w: block %d: %v", ErrCorrupt, i, err)
			}
		}
		return st, nil
	}
	if !rs.Sealed && len(rs.data) >= headerV2Size && string(rs.data[:4]) == segMagicV2 {
		n, streams, err := d.decodeStreams(rs.data[headerV2Size:], fn)
		st.Records, st.Blocks = n, streams
		if err != nil {
			return st, fmt.Errorf("%w: %v", ErrTruncated, err)
		}
		return st, nil
	}
	end := len(rs.data)
	if rs.Sealed {
		end = rs.dataLen
	}
	st.Blocks++
	off := 0
	for off < end {
		m, line, next, err := parseFrameBytes(rs.data[:end], off)
		if err != nil {
			if rs.Sealed {
				return st, fmt.Errorf("%w: %v", ErrCorrupt, err)
			}
			return st, fmt.Errorf("%w: %d bytes lost: %v", ErrTruncated, end-off, err)
		}
		fn(m, line)
		st.Records++
		off = next
	}
	return st, nil
}

// Blocks returns a sealed v2 segment's block table (nil for v1 or
// unsealed segments). Callers must not modify the entries.
func (rs *ReaderSegment) Blocks() []BlockInfo {
	if rs.v2 == nil {
		return nil
	}
	return rs.v2.Blocks
}

// FormatVersion reports the segment's on-disk format: 2 for
// block-compressed segments (sealed or unsealed), 1 for the flat
// frame format.
func (rs *ReaderSegment) FormatVersion() int {
	if rs.v2 != nil {
		return 2
	}
	if len(rs.data) >= len(segMagicV2) && string(rs.data[:len(segMagicV2)]) == segMagicV2 {
		return 2
	}
	return 1
}

// encodeSegmentV2 encodes records as one sealed v2 segment — the
// shared path for recovery rewrites, compaction, and archival, where
// the records already live in memory.
func encodeSegmentV2(recs []Rec, level, blockTarget int) ([]byte, error) {
	w := newCompWriter(level, blockTarget)
	w.openSegment()
	var x Index
	rawTotal := 0
	for _, r := range recs {
		w.lineBuf = append(w.lineBuf[:0], r.Line...)
		if err := w.stage(r.Meta, w.lineBuf); err != nil {
			return nil, err
		}
		if err := w.flushStaged(false); err != nil {
			return nil, err
		}
		w.foldMeta(r.Meta)
		x.Add(r.Meta)
		rawTotal += FrameSize(len(r.Line))
	}
	out, _, err := w.seal(x, rawTotal)
	return out, err
}
