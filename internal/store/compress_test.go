package store

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

// compRec makes realistic meter-record traffic: a handful of event
// shapes with recurring names and monotone timestamps — the structure
// the v2 encoder exists to exploit.
func compRec(i int) (Meta, string) {
	kinds := []string{"SEND", "RECEIVE", "SYSCALL read", "SCHED switch"}
	m := Meta{
		Machine: uint16(i % 6),
		Time:    uint32(1000 + i*7),
		Type:    uint32(i%4 + 1),
		PID:     uint32(100 + i%5),
	}
	line := fmt.Sprintf("%s machine=%d pid=%d sock=%d peer=m%d.monitor.lab bytes=%d t=%d",
		kinds[i%4], m.Machine, m.PID, 3+i%4, i%6, 64+i%32, m.Time)
	return m, line
}

func fillComp(t *testing.T, st *Store, n int) map[string]Meta {
	t.Helper()
	want := make(map[string]Meta, n)
	for i := 0; i < n; i++ {
		m, line := compRec(i)
		if err := st.Append(m, line); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		want[line] = m
	}
	return want
}

func checkRecs(t *testing.T, recs []Rec, want map[string]Meta) {
	t.Helper()
	if len(recs) != len(want) {
		t.Fatalf("got %d records, want %d", len(recs), len(want))
	}
	for _, r := range recs {
		m, ok := want[r.Line]
		if !ok {
			t.Fatalf("unexpected line %q", r.Line)
		}
		if r.Meta != m {
			t.Fatalf("line %q: meta %+v, want %+v", r.Line, r.Meta, m)
		}
	}
}

func TestCompressedRoundTrip(t *testing.T) {
	be := NewMemBackend()
	st, err := Open(be, Config{Shards: 2, Compress: CompressBlocks})
	if err != nil {
		t.Fatal(err)
	}
	want := fillComp(t, st, 500)
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	checkRecs(t, allRecs(t, be), want)

	rd, err := OpenReader(be)
	if err != nil {
		t.Fatal(err)
	}
	for _, segs := range rd.Shards() {
		for _, rs := range segs {
			if !rs.Sealed {
				t.Fatalf("segment %s not sealed", rs.Name)
			}
			if rs.Blocks() == nil {
				t.Fatalf("segment %s is not v2", rs.Name)
			}
			if rs.RawBytes() <= rs.DiskBytes() {
				t.Fatalf("segment %s: raw %d <= disk %d, no compression",
					rs.Name, rs.RawBytes(), rs.DiskBytes())
			}
		}
	}
}

func TestCompressedRotationAndCompaction(t *testing.T) {
	be := NewMemBackend()
	st, err := Open(be, Config{Shards: 1, SegmentCap: 2048, CompactMin: 3, Compress: CompressBlocks})
	if err != nil {
		t.Fatal(err)
	}
	want := fillComp(t, st, 400)
	if st.Stats().Rotations == 0 {
		t.Fatal("no rotations despite tiny segment cap")
	}
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	checkRecs(t, allRecs(t, be), want)
}

// An unsealed compressed segment must yield every acknowledged record:
// each online flush ends on a flate sync marker, so the whole file is
// a decodable prefix; a torn tail costs only unacknowledged bytes.
func TestCompressedUnsealedSalvage(t *testing.T) {
	be := NewMemBackend()
	st, err := Open(be, Config{Shards: 1, Compress: CompressBlocks})
	if err != nil {
		t.Fatal(err)
	}
	want := fillComp(t, st, 60)
	// No Flush: the active segment stays unsealed on the backend.
	var name string
	for _, info := range st.Segments() {
		if !info.Sealed {
			name = info.Name
		}
	}
	if name == "" {
		t.Fatal("no unsealed active segment")
	}
	data, err := be.Read(name)
	if err != nil {
		t.Fatal(err)
	}
	seg, err := ParseSegment(data)
	if err != nil {
		t.Fatalf("clean unsealed parse: %v", err)
	}
	checkRecs(t, seg.Recs, want)

	// Tearing only the trailing sync marker loses nothing: every
	// acknowledged record still decodes, cleanly.
	clean, err := ParseSegment(data[:len(data)-3])
	if err != nil {
		t.Fatalf("sync-marker tear: %v", err)
	}
	checkRecs(t, clean.Recs, want)

	// Tear into the last record's compressed bytes: the prefix
	// survives (possibly with ErrTruncated naming the damage), nothing
	// is invented, and at most the unacknowledged tail is lost.
	torn, err := ParseSegment(data[:len(data)-10])
	if err != nil && !errors.Is(err, ErrTruncated) {
		t.Fatalf("torn parse error = %v, want nil or ErrTruncated", err)
	}
	if len(torn.Recs) == 0 || len(torn.Recs) > len(want) {
		t.Fatalf("torn parse recovered %d records", len(torn.Recs))
	}
	for i, r := range torn.Recs {
		if m, ok := want[r.Line]; !ok || r.Meta != m {
			t.Fatalf("torn record %d mangled: %+v %q", i, r.Meta, r.Line)
		}
	}

	// Reopening recovers the orphan: rewritten sealed, fully indexed.
	if err := be.Create(name, data[:len(data)-10]); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(be, Config{Shards: 1, Compress: CompressBlocks})
	if err != nil {
		t.Fatal(err)
	}
	if st2.Stats().Recovered == 0 {
		t.Fatal("no recovery recorded")
	}
	recs := allRecs(t, be)
	if len(recs) != len(torn.Recs) {
		t.Fatalf("recovered store has %d records, want %d", len(recs), len(torn.Recs))
	}
}

// Damage inside one sealed block is isolated: blocks before it decode,
// the parse reports ErrCorrupt, and the block CRC catches flips that
// DEFLATE would happily decompress.
func TestCompressedCorruptBlock(t *testing.T) {
	be := NewMemBackend()
	st, err := Open(be, Config{Shards: 1, BlockTarget: 1024, Compress: CompressBlocks})
	if err != nil {
		t.Fatal(err)
	}
	fillComp(t, st, 300)
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	rd, err := OpenReader(be)
	if err != nil {
		t.Fatal(err)
	}
	rs := rd.Shards()[0][0]
	blocks := rs.Blocks()
	if len(blocks) < 3 {
		t.Fatalf("got %d blocks, want several", len(blocks))
	}
	data, err := be.Read(rs.Name)
	if err != nil {
		t.Fatal(err)
	}
	last := blocks[len(blocks)-1]
	data = bytes.Clone(data)
	data[headerV2Size+last.Off+last.CompLen/2] ^= 0x40
	seg, err := ParseSegment(data)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt parse error = %v, want ErrCorrupt", err)
	}
	wantPrefix := 0
	for _, b := range blocks[:len(blocks)-1] {
		wantPrefix += int(b.Index.Count)
	}
	if len(seg.Recs) != wantPrefix {
		t.Fatalf("corrupt parse recovered %d records, want the %d before the damage", len(seg.Recs), wantPrefix)
	}
}

func TestBlockZoneMapPruning(t *testing.T) {
	be := NewMemBackend()
	st, err := Open(be, Config{Shards: 1, BlockTarget: 1024, Compress: CompressBlocks})
	if err != nil {
		t.Fatal(err)
	}
	fillComp(t, st, 300)
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	rd, err := OpenReader(be)
	if err != nil {
		t.Fatal(err)
	}
	rs := rd.Shards()[0][0]
	blocks := rs.Blocks()
	if len(blocks) < 3 {
		t.Fatalf("got %d blocks, want several", len(blocks))
	}
	// Zone maps must tile the segment index.
	var total uint32
	for _, b := range blocks {
		total += b.Index.Count
		if b.Index.MinTime < rs.Index.MinTime || b.Index.MaxTime > rs.Index.MaxTime {
			t.Fatalf("block zone map [%d,%d] outside segment [%d,%d]",
				b.Index.MinTime, b.Index.MaxTime, rs.Index.MinTime, rs.Index.MaxTime)
		}
	}
	if total != rs.Index.Count {
		t.Fatalf("block counts sum to %d, segment has %d", total, rs.Index.Count)
	}

	// A one-timestamp admit must visit exactly the blocks whose zone
	// maps cover it and still surface the record.
	target := blocks[len(blocks)-1].Index.MinTime
	d := AcquireDecoder()
	defer ReleaseDecoder(d)
	found := false
	st2, err := rs.Scan(d, func(x Index) bool {
		return x.MinTime <= target && target <= x.MaxTime
	}, func(m Meta, line []byte) {
		if uint64(m.Time) == target {
			found = true
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatalf("pruned scan missed the record at time %d", target)
	}
	if st2.BlocksPruned == 0 {
		t.Fatal("selective scan pruned no blocks")
	}
	if st2.Blocks != len(blocks) {
		t.Fatalf("scan visited %d blocks, segment has %d", st2.Blocks, len(blocks))
	}
}

// Scan must emit exactly what Load parses, in order, for every segment
// shape: v1/v2, sealed/unsealed.
func TestScanMatchesLoad(t *testing.T) {
	for _, mode := range []CompressMode{CompressOff, CompressBlocks} {
		for _, seal := range []bool{false, true} {
			name := fmt.Sprintf("mode=%d/sealed=%v", mode, seal)
			be := NewMemBackend()
			st, err := Open(be, Config{Shards: 1, Compress: mode, BlockTarget: 1024})
			if err != nil {
				t.Fatal(err)
			}
			fillComp(t, st, 120)
			if seal {
				if err := st.Flush(); err != nil {
					t.Fatal(err)
				}
			}
			rd, err := OpenReader(be)
			if err != nil {
				t.Fatal(err)
			}
			rs := rd.Shards()[0][0]
			seg, err := rs.Load()
			if err != nil {
				t.Fatalf("%s: load: %v", name, err)
			}
			d := AcquireDecoder()
			var got []Rec
			_, err = rs.Scan(d, nil, func(m Meta, line []byte) {
				got = append(got, Rec{Meta: m, Line: string(line)})
			})
			ReleaseDecoder(d)
			if err != nil {
				t.Fatalf("%s: scan: %v", name, err)
			}
			if len(got) != len(seg.Recs) {
				t.Fatalf("%s: scan emitted %d records, load parsed %d", name, len(got), len(seg.Recs))
			}
			for i := range got {
				if got[i] != seg.Recs[i] {
					t.Fatalf("%s: record %d: scan %+v, load %+v", name, i, got[i], seg.Recs[i])
				}
			}
		}
	}
}

// The warmed block-decode path must be allocation-free: pooled
// decoder, reused raw/line buffers, no per-record or per-block
// garbage. This is the scan path queries sit in for hours.
func TestBlockDecodeZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unstable under the race detector")
	}
	be := NewMemBackend()
	st, err := Open(be, Config{Shards: 1, BlockTarget: 2048, Compress: CompressBlocks})
	if err != nil {
		t.Fatal(err)
	}
	fillComp(t, st, 400)
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	rd, err := OpenReader(be)
	if err != nil {
		t.Fatal(err)
	}
	rs := rd.Shards()[0][0]
	d := AcquireDecoder()
	defer ReleaseDecoder(d)
	n := 0
	fn := func(m Meta, line []byte) { n += len(line) }
	// Warm the decoder's buffers once, then demand zero steady-state.
	if _, err := rs.Scan(d, nil, fn); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := rs.Scan(d, nil, fn); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warmed block-decode scan allocates %.1f/op, want 0", allocs)
	}
}

// Mixed stores read both formats side by side: v1 segments written
// before compression was enabled stay readable after the switch.
func TestMixedFormatStore(t *testing.T) {
	be := NewMemBackend()
	st, err := Open(be, Config{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[string]Meta)
	for i := 0; i < 50; i++ {
		m, line := compRec(i)
		if err := st.Append(m, line); err != nil {
			t.Fatal(err)
		}
		want[line] = m
	}
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(be, Config{Shards: 1, Compress: CompressBlocks})
	if err != nil {
		t.Fatal(err)
	}
	for i := 50; i < 100; i++ {
		m, line := compRec(i)
		if err := st2.Append(m, line); err != nil {
			t.Fatal(err)
		}
		want[line] = m
	}
	if err := st2.Flush(); err != nil {
		t.Fatal(err)
	}
	checkRecs(t, allRecs(t, be), want)
}
