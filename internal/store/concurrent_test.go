package store

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

// TestAppendBatchConcurrent exercises the store's per-shard locking
// under the parallel filter pipeline's access pattern: several
// goroutines calling AppendBatch with batches whose machines overlap
// every shard. It then performs a full Reader scan and asserts the
// invariants concurrency must not break:
//
//   - no torn frames: every segment parses cleanly;
//   - routing: every record sits on the shard its machine maps to;
//   - per-writer order: within a shard, one writer's records appear in
//     the order that writer appended them (batches are atomic per
//     shard and a writer's batches are sequential);
//   - accounting: footer counts match parsed frames, and the total
//     equals exactly the number of records written.
func TestAppendBatchConcurrent(t *testing.T) {
	const (
		writers   = 8
		batches   = 40
		batchRecs = 5
		shards    = 4
	)
	be := NewMemBackend()
	// A small cap forces rotations mid-run; compaction stays out of the
	// way so the segment sequence mirrors the append sequence.
	st, err := Open(be, Config{Shards: shards, SegmentCap: 1024, CompactMin: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				recs := make([]BatchRec, batchRecs)
				for i := range recs {
					seq := b*batchRecs + i
					// Machines rotate through more values than shards,
					// so every batch overlaps shards with every other
					// writer's batches.
					machine := uint16((w + seq) % 7)
					recs[i] = BatchRec{
						Meta: Meta{Machine: machine, Time: uint32(seq), Type: 1, PID: uint32(w)},
						Line: []byte(fmt.Sprintf("w=%d seq=%d padding padding padding", w, seq)),
					}
				}
				if err := st.AppendBatch(recs); err != nil {
					t.Errorf("writer %d batch %d: %v", w, b, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}

	rd, err := OpenReader(be)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for shardID, segs := range rd.Shards() {
		lastSeq := make(map[int]int) // writer -> last seq seen on this shard
		for _, rs := range segs {
			seg, err := rs.Load()
			if err != nil {
				t.Fatalf("shard %d segment %s: %v", shardID, rs.Name, err)
			}
			if !seg.Sealed {
				t.Fatalf("shard %d segment %s unsealed after Flush", shardID, rs.Name)
			}
			if int(seg.Index.Count) != len(seg.Recs) {
				t.Fatalf("shard %d segment %s: footer count %d, parsed %d frames",
					shardID, rs.Name, seg.Index.Count, len(seg.Recs))
			}
			for _, r := range seg.Recs {
				if int(r.Meta.Machine)%shards != shardID {
					t.Fatalf("machine %d record on shard %d", r.Meta.Machine, shardID)
				}
				var w, seq int
				if _, err := fmt.Sscanf(r.Line, "w=%d seq=%d", &w, &seq); err != nil ||
					!strings.HasSuffix(r.Line, "padding") {
					t.Fatalf("torn or mangled record %q", r.Line)
				}
				if last, ok := lastSeq[w]; ok && seq <= last {
					t.Fatalf("shard %d: writer %d seq %d after seq %d", shardID, w, seq, last)
				}
				lastSeq[w] = seq
				total++
			}
		}
	}
	if want := writers * batches * batchRecs; total != want {
		t.Fatalf("scanned %d records, wrote %d", total, want)
	}
}
