package store

import (
	"errors"
	"testing"
)

// fuzzSeedSegment builds a small sealed segment for the fuzz corpus.
func fuzzSeedSegment() []byte {
	var frames []byte
	var x Index
	for i := 0; i < 3; i++ {
		m := Meta{Machine: uint16(i), Time: uint32(i * 100), Type: uint32(i + 1), PID: uint32(50 + i)}
		frames = AppendFrame(frames, m, "SEND machine=1 cpuTime=1 procTime=0 pid=1")
		x.Add(m)
	}
	return AppendFooter(frames, x, uint32(len(frames)))
}

// fuzzSeedV2 builds a small sealed block-compressed (v2) segment with
// several blocks and a shared dictionary worth corrupting.
func fuzzSeedV2() []byte {
	var recs []Rec
	for i := 0; i < 40; i++ {
		m := Meta{Machine: uint16(i % 3), Time: uint32(i * 100), Type: uint32(i%4 + 1), PID: uint32(50 + i%5)}
		recs = append(recs, Rec{Meta: m, Line: "SEND machine=1 cpuTime=1 procTime=0 pid=1 msgLength=240"})
	}
	out, err := encodeSegmentV2(recs, 0, 256)
	if err != nil {
		panic(err)
	}
	return out
}

// FuzzParseSegment checks the segment parser on arbitrary bytes: it
// must never panic, and whatever valid record prefix it salvages must
// re-encode to a segment that parses back to the same records — the
// invariant Open's crash recovery relies on.
func FuzzParseSegment(f *testing.F) {
	sealed := fuzzSeedSegment()
	f.Add([]byte{})
	f.Add(sealed)
	// Corrupt footer: the CRC no longer matches, demoting the segment to
	// an unsealed scan.
	corruptFooter := append([]byte(nil), sealed...)
	corruptFooter[len(corruptFooter)-FooterSize+9] ^= 0xff
	f.Add(corruptFooter)
	// Truncated final segment: a writer died mid-append.
	f.Add(sealed[:len(sealed)-FooterSize-5])
	// Payload CRC mismatch inside a sealed segment.
	flipped := append([]byte(nil), sealed...)
	flipped[frameHeadSize+metaSize+2] ^= 0xff
	f.Add(flipped)
	// Garbage.
	f.Add([]byte("not a segment at all, just text pretending"))
	// Block-compressed (v2) seeds.
	v2 := fuzzSeedV2()
	f.Add(v2)
	// Truncated inside the first block's DEFLATE stream — the footer is
	// gone, so the parser must fall back to the unsealed stream walk and
	// salvage the decodable prefix.
	f.Add(v2[:headerV2Size+3])
	// Unsealed v2: header plus data region only, no footer at all.
	if fv2, ok := parseFooterV2(v2); ok {
		f.Add(v2[:fv2.DataLen])
		// Corrupt dictionary: flip a byte in the footer body (dictionary +
		// block table). The body CRC no longer matches, demoting the
		// segment to the unsealed salvage walk over its blocks.
		corruptDict := append([]byte(nil), v2...)
		corruptDict[fv2.DataLen+1] ^= 0xff
		f.Add(corruptDict)
	}
	// CRC flip inside a compressed block of a sealed v2 segment: the
	// footer still verifies, the damaged block must surface ErrCorrupt
	// after the blocks before it were emitted.
	blockFlip := append([]byte(nil), v2...)
	blockFlip[headerV2Size+5] ^= 0xff
	f.Add(blockFlip)
	f.Fuzz(func(t *testing.T, data []byte) {
		seg, err := ParseSegment(data)
		if seg == nil {
			t.Fatal("ParseSegment returned nil segment")
		}
		if err != nil && !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrTruncated) {
			t.Fatalf("unexpected error class: %v", err)
		}
		// The salvaged prefix must survive the recovery rewrite: sealed
		// re-encoding parses back to the same record count, cleanly.
		var frames []byte
		var x Index
		for _, r := range seg.Recs {
			frames = AppendFrame(frames, r.Meta, r.Line)
			x.Add(r.Meta)
		}
		again, err := ParseSegment(AppendFooter(frames, x, uint32(len(frames))))
		if err != nil {
			t.Fatalf("re-parse of salvage failed: %v", err)
		}
		if len(again.Recs) != len(seg.Recs) {
			t.Fatalf("salvage round trip changed count %d -> %d", len(seg.Recs), len(again.Recs))
		}
		if !again.Sealed {
			t.Fatal("re-encoded salvage not sealed")
		}
	})
}
