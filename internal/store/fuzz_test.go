package store

import (
	"errors"
	"testing"
)

// fuzzSeedSegment builds a small sealed segment for the fuzz corpus.
func fuzzSeedSegment() []byte {
	var frames []byte
	var x Index
	for i := 0; i < 3; i++ {
		m := Meta{Machine: uint16(i), Time: uint32(i * 100), Type: uint32(i + 1), PID: uint32(50 + i)}
		frames = AppendFrame(frames, m, "SEND machine=1 cpuTime=1 procTime=0 pid=1")
		x.Add(m)
	}
	return AppendFooter(frames, x, uint32(len(frames)))
}

// FuzzParseSegment checks the segment parser on arbitrary bytes: it
// must never panic, and whatever valid record prefix it salvages must
// re-encode to a segment that parses back to the same records — the
// invariant Open's crash recovery relies on.
func FuzzParseSegment(f *testing.F) {
	sealed := fuzzSeedSegment()
	f.Add([]byte{})
	f.Add(sealed)
	// Corrupt footer: the CRC no longer matches, demoting the segment to
	// an unsealed scan.
	corruptFooter := append([]byte(nil), sealed...)
	corruptFooter[len(corruptFooter)-FooterSize+9] ^= 0xff
	f.Add(corruptFooter)
	// Truncated final segment: a writer died mid-append.
	f.Add(sealed[:len(sealed)-FooterSize-5])
	// Payload CRC mismatch inside a sealed segment.
	flipped := append([]byte(nil), sealed...)
	flipped[frameHeadSize+metaSize+2] ^= 0xff
	f.Add(flipped)
	// Garbage.
	f.Add([]byte("not a segment at all, just text pretending"))
	f.Fuzz(func(t *testing.T, data []byte) {
		seg, err := ParseSegment(data)
		if seg == nil {
			t.Fatal("ParseSegment returned nil segment")
		}
		if err != nil && !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrTruncated) {
			t.Fatalf("unexpected error class: %v", err)
		}
		// The salvaged prefix must survive the recovery rewrite: sealed
		// re-encoding parses back to the same record count, cleanly.
		var frames []byte
		var x Index
		for _, r := range seg.Recs {
			frames = AppendFrame(frames, r.Meta, r.Line)
			x.Add(r.Meta)
		}
		again, err := ParseSegment(AppendFooter(frames, x, uint32(len(frames))))
		if err != nil {
			t.Fatalf("re-parse of salvage failed: %v", err)
		}
		if len(again.Recs) != len(seg.Recs) {
			t.Fatalf("salvage round trip changed count %d -> %d", len(seg.Recs), len(again.Recs))
		}
		if !again.Sealed {
			t.Fatal("re-encoded salvage not sealed")
		}
	})
}
