package store

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"math"
	"testing"
)

// fuzzSeedSegment builds a small sealed segment for the fuzz corpus.
func fuzzSeedSegment() []byte {
	var frames []byte
	var x Index
	for i := 0; i < 3; i++ {
		m := Meta{Machine: uint16(i), Time: uint32(i * 100), Type: uint32(i + 1), PID: uint32(50 + i)}
		frames = AppendFrame(frames, m, "SEND machine=1 cpuTime=1 procTime=0 pid=1")
		x.Add(m)
	}
	return AppendFooter(frames, x, uint32(len(frames)))
}

// fuzzSeedV2 builds a small sealed block-compressed (v2) segment with
// several blocks and a shared dictionary worth corrupting.
func fuzzSeedV2() []byte {
	var recs []Rec
	for i := 0; i < 40; i++ {
		m := Meta{Machine: uint16(i % 3), Time: uint32(i * 100), Type: uint32(i%4 + 1), PID: uint32(50 + i%5)}
		recs = append(recs, Rec{Meta: m, Line: "SEND machine=1 cpuTime=1 procTime=0 pid=1 msgLength=240"})
	}
	out, err := encodeSegmentV2(recs, 0, 256)
	if err != nil {
		panic(err)
	}
	return out
}

// fuzzSeedOverflow builds an unsealed v2 segment whose single record
// declares front-coding lengths p=MaxUint64, s=1: the uint64 sum wraps
// to zero, which an unchecked p+s bounds test would admit before
// prev[:p] panicked. The parser must reject it as a torn record.
func fuzzSeedOverflow() []byte {
	var payload []byte
	payload = binary.AppendUvarint(payload, 1)              // machine
	payload = binary.AppendUvarint(payload, zigzag(100))    // time delta
	payload = binary.AppendUvarint(payload, 1)              // type
	payload = binary.AppendUvarint(payload, 1)              // pid
	payload = binary.AppendUvarint(payload, math.MaxUint64) // prefix length
	payload = binary.AppendUvarint(payload, 1)              // suffix length
	payload = append(payload, opEnd)
	var buf bytes.Buffer
	buf.WriteString(segMagicV2)
	buf.Write([]byte{0, 0, 0, 0})
	fw, _ := flate.NewWriter(&buf, flate.NoCompression)
	fw.Write(payload)
	fw.Close()
	return buf.Bytes()
}

// TestFrontCodingLengthOverflow pins the crafted-overflow segment:
// ParseSegment must degrade to ErrTruncated with nothing salvaged, not
// panic — Store.Open parses every unsealed segment, so a panic here
// crash-loops reopen on one corrupt file.
func TestFrontCodingLengthOverflow(t *testing.T) {
	seg, err := ParseSegment(fuzzSeedOverflow())
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
	if len(seg.Recs) != 0 {
		t.Fatalf("salvaged %d records from a malformed segment", len(seg.Recs))
	}
}

// fuzzSeedBlockExtentOverflow builds a sealed v2 segment whose block
// table declares Off and CompLen near 2^62: the int sum wraps
// negative, which an unchecked Off+CompLen extent test would admit
// before the region slicing panicked. The footer CRCs verify — they
// are computed over the crafted table — so only the extent check
// stands between the table and the slice.
func fuzzSeedBlockExtentOverflow() []byte {
	data := []byte(segMagicV2)
	data = append(data, 0, 0, 0, 0)
	data = append(data, "not a real block"...)
	blocks := []blockMeta{{off: 1 << 62, compLen: 1 << 62, rawLen: 64, idx: Index{Count: 1}}}
	return appendFooterV2(data, Index{Count: 1}, uint32(len(data)), 64, nil, blocks)
}

// TestBlockTableExtentOverflow pins the crafted block table: the
// footer must be rejected (degrading the file to unsealed salvage),
// never accepted as sealed and sliced.
func TestBlockTableExtentOverflow(t *testing.T) {
	seg, err := ParseSegment(fuzzSeedBlockExtentOverflow())
	if seg.Sealed {
		t.Fatal("crafted footer with wrapping block extent accepted as sealed")
	}
	if len(seg.Recs) != 0 {
		t.Fatalf("salvaged %d records from a malformed segment", len(seg.Recs))
	}
	if err != nil && !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v, want nil or ErrTruncated", err)
	}
}

// FuzzParseSegment checks the segment parser on arbitrary bytes: it
// must never panic, and whatever valid record prefix it salvages must
// re-encode to a segment that parses back to the same records — the
// invariant Open's crash recovery relies on.
func FuzzParseSegment(f *testing.F) {
	sealed := fuzzSeedSegment()
	f.Add([]byte{})
	f.Add(sealed)
	// Corrupt footer: the CRC no longer matches, demoting the segment to
	// an unsealed scan.
	corruptFooter := append([]byte(nil), sealed...)
	corruptFooter[len(corruptFooter)-FooterSize+9] ^= 0xff
	f.Add(corruptFooter)
	// Truncated final segment: a writer died mid-append.
	f.Add(sealed[:len(sealed)-FooterSize-5])
	// Payload CRC mismatch inside a sealed segment.
	flipped := append([]byte(nil), sealed...)
	flipped[frameHeadSize+metaSize+2] ^= 0xff
	f.Add(flipped)
	// Garbage.
	f.Add([]byte("not a segment at all, just text pretending"))
	// Block-compressed (v2) seeds.
	v2 := fuzzSeedV2()
	f.Add(v2)
	// Truncated inside the first block's DEFLATE stream — the footer is
	// gone, so the parser must fall back to the unsealed stream walk and
	// salvage the decodable prefix.
	f.Add(v2[:headerV2Size+3])
	// Unsealed v2: header plus data region only, no footer at all.
	if fv2, ok := parseFooterV2(v2); ok {
		f.Add(v2[:fv2.DataLen])
		// Corrupt dictionary: flip a byte in the footer body (dictionary +
		// block table). The body CRC no longer matches, demoting the
		// segment to the unsealed salvage walk over its blocks.
		corruptDict := append([]byte(nil), v2...)
		corruptDict[fv2.DataLen+1] ^= 0xff
		f.Add(corruptDict)
	}
	// CRC flip inside a compressed block of a sealed v2 segment: the
	// footer still verifies, the damaged block must surface ErrCorrupt
	// after the blocks before it were emitted.
	blockFlip := append([]byte(nil), v2...)
	blockFlip[headerV2Size+5] ^= 0xff
	f.Add(blockFlip)
	// Front-coding lengths whose uint64 sum wraps past the bounds check.
	f.Add(fuzzSeedOverflow())
	// Block-table extents whose int sum wraps past the region check.
	f.Add(fuzzSeedBlockExtentOverflow())
	f.Fuzz(func(t *testing.T, data []byte) {
		seg, err := ParseSegment(data)
		if seg == nil {
			t.Fatal("ParseSegment returned nil segment")
		}
		if err != nil && !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrTruncated) {
			t.Fatalf("unexpected error class: %v", err)
		}
		// The salvaged prefix must survive the recovery rewrite: sealed
		// re-encoding parses back to the same record count, cleanly.
		var frames []byte
		var x Index
		for _, r := range seg.Recs {
			frames = AppendFrame(frames, r.Meta, r.Line)
			x.Add(r.Meta)
		}
		again, err := ParseSegment(AppendFooter(frames, x, uint32(len(frames))))
		if err != nil {
			t.Fatalf("re-parse of salvage failed: %v", err)
		}
		if len(again.Recs) != len(seg.Recs) {
			t.Fatalf("salvage round trip changed count %d -> %d", len(seg.Recs), len(again.Recs))
		}
		if !again.Sealed {
			t.Fatal("re-encoded salvage not sealed")
		}
	})
}
