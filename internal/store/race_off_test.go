//go:build !race

package store

// raceEnabled reports whether this test binary was built with the race
// detector, which inflates allocation counts and invalidates the
// zero-alloc gates.
const raceEnabled = false
