//go:build race

package store

const raceEnabled = true
