package store

import (
	"fmt"
	"strings"
	"testing"
)

// sealAt appends n records at the given cpuTime and seals them into
// their own segment, giving retention tests precise per-segment ages.
func sealAt(t *testing.T, st *Store, when uint32, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		m := Meta{Machine: 0, Time: when + uint32(i), Type: 1, PID: 100}
		line := fmt.Sprintf("RECEIVE pid=100 t=%d seq=%d", when+uint32(i), i)
		if err := st.Append(m, line); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
}

func TestArchiveRollsColdSegments(t *testing.T) {
	be := NewMemBackend()
	st, err := Open(be, Config{
		Shards: 1, CompactMin: 1 << 20,
		Compress: CompressBlocks, ArchiveAfter: 5_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Four cold segments, then one hot one that defines "now".
	for i := 0; i < 4; i++ {
		sealAt(t, st, uint32(1000+i*100), 10)
	}
	sealAt(t, st, 20_000, 10)
	if err := st.Maintain(); err != nil {
		t.Fatal(err)
	}
	stats := st.Stats()
	if stats.Archived != 4 {
		t.Fatalf("archived %d segments, want 4", stats.Archived)
	}
	var tiers []int
	for _, info := range st.Segments() {
		tiers = append(tiers, info.Tier)
		if info.Tier == 1 && !strings.HasPrefix(info.Name, "a") {
			t.Fatalf("archival segment named %q", info.Name)
		}
	}
	// One merged archive followed by the hot segment.
	if len(tiers) != 2 || tiers[0] != 1 || tiers[1] != 0 {
		t.Fatalf("segment tiers = %v, want [1 0]", tiers)
	}
	recs := allRecs(t, be)
	if len(recs) != 50 {
		t.Fatalf("got %d records after archival, want 50", len(recs))
	}
	// Archival is idempotent: a second pass finds nothing cold in tier 0.
	if err := st.Maintain(); err != nil {
		t.Fatal(err)
	}
	if got := st.Stats().Archived; got != 4 {
		t.Fatalf("second maintain archived more: %d", got)
	}
}

func TestRetentionExpires(t *testing.T) {
	be := NewMemBackend()
	st, err := Open(be, Config{
		Shards: 1, CompactMin: 1 << 20,
		Compress: CompressBlocks, RetainFor: 8_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	sealAt(t, st, 1_000, 10) // beyond retention once "now" reaches 20k
	sealAt(t, st, 15_000, 10)
	sealAt(t, st, 20_000, 10)
	if err := st.Maintain(); err != nil {
		t.Fatal(err)
	}
	if got := st.Stats().Expired; got != 1 {
		t.Fatalf("expired %d segments, want 1", got)
	}
	recs := allRecs(t, be)
	if len(recs) != 20 {
		t.Fatalf("got %d records after expiry, want 20", len(recs))
	}
	for _, r := range recs {
		if r.Meta.Time < 15_000 {
			t.Fatalf("expired-era record survived: %+v", r.Meta)
		}
	}
}

// Expiry and archival compose: ancient data disappears, cold data
// rolls into the archive tier, hot data stays in tier 0 — and the
// archive itself expires once it ages out.
func TestRetentionLifecycle(t *testing.T) {
	be := NewMemBackend()
	st, err := Open(be, Config{
		Shards: 1, CompactMin: 1 << 20, Compress: CompressBlocks,
		ArchiveAfter: 5_000, RetainFor: 50_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	sealAt(t, st, 1_000, 10)
	sealAt(t, st, 2_000, 10)
	sealAt(t, st, 10_000, 10)
	if err := st.Maintain(); err != nil {
		t.Fatal(err)
	}
	if got := st.Stats().Archived; got != 2 {
		t.Fatalf("archived %d, want 2", got)
	}
	// Advance "now" far enough that the archive crosses the horizon.
	sealAt(t, st, 60_000, 10)
	if err := st.Maintain(); err != nil {
		t.Fatal(err)
	}
	stats := st.Stats()
	if stats.Expired == 0 {
		t.Fatal("nothing expired after the clock advanced")
	}
	for _, info := range st.Segments() {
		if info.Index.Count > 0 && info.Index.MaxTime+50_000 < 60_000 {
			t.Fatalf("beyond-retention segment %s survived", info.Name)
		}
	}
	if len(allRecs(t, be)) >= 40 {
		t.Fatal("no records were expired")
	}
}

// Retention survives a restart: ages are measured against the newest
// record on disk, re-seeded from footers at Open.
func TestRetentionAcrossReopen(t *testing.T) {
	be := NewMemBackend()
	cfg := Config{Shards: 1, CompactMin: 1 << 20, Compress: CompressBlocks}
	st, err := Open(be, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sealAt(t, st, 1_000, 5)
	sealAt(t, st, 20_000, 5)
	cfg.RetainFor = 8_000
	st2, err := Open(be, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := st2.Maintain(); err != nil {
		t.Fatal(err)
	}
	if got := st2.Stats().Expired; got != 1 {
		t.Fatalf("expired %d segments after reopen, want 1", got)
	}
}
