// Package store implements the segmented, sharded event store that
// filter processes write behind their flat text logs.
//
// The paper's filters append surviving records to a flat file under
// /usr/tmp (section 3.4), and the whole file travels to the controller
// on every getlog. That is fine for a 1985 VAX and hopeless at scale:
// Internet-scale monitors answer queries over collected data instead of
// shipping raw logs (ACME), and shard monitoring state so per-node cost
// stays flat (DCM). This package brings both ideas to the monitor:
//
//   - Records are framed with a length and a CRC (the same defensive
//     framing discipline as the meter wire stream of Appendix A) and
//     appended to fixed-size *segments*.
//   - A sealed segment ends in a footer carrying an index — record
//     count, min/max timestamp, and bitmap summaries of the machines,
//     pids, and event types present — so a query can prune the whole
//     segment without parsing a single frame.
//   - Segments are distributed over *shards* by originating machine, so
//     concurrent writers do not contend and queries merge per-shard
//     streams by timestamp.
//
// The query side lives in internal/query; this package knows nothing
// about selection rules.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Meta is the fixed per-record metadata carried in every frame — the
// fields the footer index summarizes, lifted out of the record line so
// the store never has to parse its own payloads.
type Meta struct {
	Machine uint16 // originating machine (header field)
	Time    uint32 // cpuTime, the machine clock in ms (header field)
	Type    uint32 // meter trace type
	PID     uint32 // process id (0 when unknown or discarded)
}

// Rec is one stored record: its frame metadata and the log line the
// filter formatted for it.
type Rec struct {
	Meta Meta
	Line string
}

// Frame layout: [length u32][crc32 u32][meta 14 bytes][line bytes],
// little-endian, where length covers meta+line and the IEEE CRC is
// computed over the same span.
const (
	frameHeadSize = 8
	metaSize      = 14

	// MaxFrameSize bounds one frame; anything larger in a length field
	// is corruption, not data (a filter log line is a few hundred
	// bytes).
	MaxFrameSize = 1 << 20
)

// FooterSize is the fixed size of a sealed segment's trailing footer:
// magic, version, count, minTime, maxTime, machine bitmap, pid bitmap,
// type bitmap, data length, footer CRC.
const FooterSize = 56

const (
	footerMagic   = "DPMS"
	footerVersion = 1
)

// Errors reported by segment parsing. They mirror the trace package's
// split between tolerable tears and fatal corruption: ErrTruncated
// accompanies the valid record prefix of an unsealed segment whose
// tail does not parse (a writer died mid-append); ErrCorrupt marks a
// sealed segment whose frames contradict its footer — the data was
// damaged after the seal, which no crash explains.
var (
	ErrCorrupt   = errors.New("store: corrupt segment")
	ErrTruncated = errors.New("store: truncated segment tail")
)

// Index is the per-segment summary a footer carries. The bitmaps are
// conservative (bloom-style): each machine, pid, and type sets one bit
// of a fixed-width mask, so a collision can only cause an unnecessary
// scan, never a wrong pruning decision.
type Index struct {
	Count    uint32
	MinTime  uint64
	MaxTime  uint64
	Machines uint64
	PIDs     uint64
	Types    uint32
}

// MachineBit maps a machine id onto its bitmap bit. The same mapping
// must be used on the write and query sides.
func MachineBit(m uint64) uint64 { return 1 << (m % 64) }

// PIDBit maps a process id onto its bitmap bit.
func PIDBit(pid uint64) uint64 { return 1 << (pid % 64) }

// TypeBit maps a meter trace type onto its bitmap bit.
func TypeBit(t uint64) uint32 { return 1 << (t % 32) }

// Add folds one record's metadata into the index.
func (x *Index) Add(m Meta) {
	t := uint64(m.Time)
	if x.Count == 0 {
		x.MinTime, x.MaxTime = t, t
	} else {
		if t < x.MinTime {
			x.MinTime = t
		}
		if t > x.MaxTime {
			x.MaxTime = t
		}
	}
	x.Count++
	x.Machines |= MachineBit(uint64(m.Machine))
	x.PIDs |= PIDBit(uint64(m.PID))
	x.Types |= TypeBit(uint64(m.Type))
}

// AppendFrame appends one record frame to dst and returns the extended
// slice. The frame is built in place — with dst at capacity the call
// allocates nothing, which is what lets the batched ingest path frame
// a whole flush without per-record garbage.
func AppendFrame(dst []byte, m Meta, line string) []byte {
	return appendFrame(dst, m, line)
}

// AppendFrameBytes is AppendFrame for a byte-slice line, avoiding a
// string conversion on the filter's pooled line buffers.
func AppendFrameBytes(dst []byte, m Meta, line []byte) []byte {
	return appendFrame(dst, m, line)
}

func appendFrame[T string | []byte](dst []byte, m Meta, line T) []byte {
	le := binary.LittleEndian
	dst = le.AppendUint32(dst, uint32(metaSize+len(line)))
	crcAt := len(dst)
	dst = le.AppendUint32(dst, 0) // CRC back-patched below
	start := len(dst)
	var mb [metaSize]byte
	le.PutUint16(mb[0:2], m.Machine)
	le.PutUint32(mb[2:6], m.Time)
	le.PutUint32(mb[6:10], m.Type)
	le.PutUint32(mb[10:14], m.PID)
	dst = append(dst, mb[:]...)
	dst = append(dst, line...)
	le.PutUint32(dst[crcAt:], crc32.ChecksumIEEE(dst[start:]))
	return dst
}

// FrameSize returns the encoded size of a frame carrying a line of the
// given length.
func FrameSize(lineLen int) int { return frameHeadSize + metaSize + lineLen }

// parseFrame decodes the frame at off, returning the record and the
// offset of the next frame.
func parseFrame(data []byte, off int) (Rec, int, error) {
	m, line, next, err := parseFrameBytes(data, off)
	if err != nil {
		return Rec{}, off, err
	}
	return Rec{Meta: m, Line: string(line)}, next, nil
}

// parseFrameBytes is parseFrame without the line copy: the returned
// line aliases data, for scan paths that consume it before moving on.
func parseFrameBytes(data []byte, off int) (Meta, []byte, int, error) {
	le := binary.LittleEndian
	if off+frameHeadSize > len(data) {
		return Meta{}, nil, off, fmt.Errorf("frame header overruns data at offset %d", off)
	}
	n := int(le.Uint32(data[off : off+4]))
	if n < metaSize || n > MaxFrameSize {
		return Meta{}, nil, off, fmt.Errorf("bad frame length %d at offset %d", n, off)
	}
	if off+frameHeadSize+n > len(data) {
		return Meta{}, nil, off, fmt.Errorf("frame body overruns data at offset %d", off)
	}
	crc := le.Uint32(data[off+4 : off+8])
	payload := data[off+frameHeadSize : off+frameHeadSize+n]
	if crc32.ChecksumIEEE(payload) != crc {
		return Meta{}, nil, off, fmt.Errorf("frame checksum mismatch at offset %d", off)
	}
	var m Meta
	m.Machine = le.Uint16(payload[0:2])
	m.Time = le.Uint32(payload[2:6])
	m.Type = le.Uint32(payload[6:10])
	m.PID = le.Uint32(payload[10:14])
	return m, payload[metaSize:], off + frameHeadSize + n, nil
}

// AppendFooter appends a sealed segment's footer for the given index
// and frame-data length.
func AppendFooter(dst []byte, x Index, dataLen uint32) []byte {
	le := binary.LittleEndian
	b := make([]byte, FooterSize)
	copy(b[0:4], footerMagic)
	le.PutUint32(b[4:8], footerVersion)
	le.PutUint32(b[8:12], x.Count)
	le.PutUint64(b[12:20], x.MinTime)
	le.PutUint64(b[20:28], x.MaxTime)
	le.PutUint64(b[28:36], x.Machines)
	le.PutUint64(b[36:44], x.PIDs)
	le.PutUint32(b[44:48], x.Types)
	le.PutUint32(b[48:52], dataLen)
	le.PutUint32(b[52:56], crc32.ChecksumIEEE(b[:52]))
	return append(dst, b...)
}

// ParseFooter examines the tail of a segment file for a valid footer.
// ok=false means the segment is unsealed (or its footer is mangled,
// which is treated the same way: the frames are scanned instead).
func ParseFooter(data []byte) (x Index, dataLen int, ok bool) {
	if len(data) < FooterSize {
		return Index{}, 0, false
	}
	le := binary.LittleEndian
	b := data[len(data)-FooterSize:]
	if string(b[0:4]) != footerMagic {
		return Index{}, 0, false
	}
	if crc32.ChecksumIEEE(b[:52]) != le.Uint32(b[52:56]) {
		return Index{}, 0, false
	}
	if le.Uint32(b[4:8]) != footerVersion {
		return Index{}, 0, false
	}
	dataLen = int(le.Uint32(b[48:52]))
	if dataLen != len(data)-FooterSize {
		return Index{}, 0, false
	}
	x.Count = le.Uint32(b[8:12])
	x.MinTime = le.Uint64(b[12:20])
	x.MaxTime = le.Uint64(b[20:28])
	x.Machines = le.Uint64(b[28:36])
	x.PIDs = le.Uint64(b[36:44])
	x.Types = le.Uint32(b[44:48])
	return x, dataLen, true
}

// Segment is one parsed segment file.
type Segment struct {
	Recs   []Rec
	Index  Index
	Sealed bool
}

// ParseSegment parses a whole segment file.
//
// A file with a valid footer is sealed: every frame must verify and
// the frame count must match the footer, otherwise the valid prefix is
// returned with ErrCorrupt. A file without a valid footer is scanned
// frame by frame; if the scan fails before the end of the file the
// valid prefix is returned with ErrTruncated — the shape a writer
// leaves when it dies mid-append, and also what a sealed segment with
// a mangled footer degrades to (its frames still verify; only the
// index is lost).
func ParseSegment(data []byte) (*Segment, error) {
	// Compressed (v2) segments: a sealed one has a footer-v2 tail; an
	// unsealed one starts with the v2 header and is salvaged stream by
	// stream — each online flush ends on a flate sync marker, so every
	// acknowledged batch sits in a decodable prefix.
	if f, ok := parseFooterV2(data); ok {
		s := &Segment{Sealed: true, Index: f.Index}
		d := AcquireDecoder()
		defer ReleaseDecoder(d)
		region := data[headerV2Size:f.DataLen]
		for i, b := range f.Blocks {
			_, err := d.decodeBlock(region[b.Off:b.Off+b.CompLen], b.RawLen, b.CRC, f.Dict, func(m Meta, line []byte) {
				s.Recs = append(s.Recs, Rec{Meta: m, Line: string(line)})
			})
			if err != nil {
				return s, fmt.Errorf("%w: block %d: %v", ErrCorrupt, i, err)
			}
		}
		if uint32(len(s.Recs)) != f.Index.Count {
			return s, fmt.Errorf("%w: footer count %d but %d records", ErrCorrupt, f.Index.Count, len(s.Recs))
		}
		return s, nil
	}
	if len(data) >= headerV2Size && string(data[:len(segMagicV2)]) == segMagicV2 {
		s := &Segment{}
		d := AcquireDecoder()
		defer ReleaseDecoder(d)
		_, _, err := d.decodeStreams(data[headerV2Size:], func(m Meta, line []byte) {
			s.Recs = append(s.Recs, Rec{Meta: m, Line: string(line)})
			s.Index.Add(m)
		})
		if err != nil {
			return s, fmt.Errorf("%w: %v", ErrTruncated, err)
		}
		return s, nil
	}
	if x, dataLen, ok := ParseFooter(data); ok {
		s := &Segment{Sealed: true, Index: x}
		off := 0
		for off < dataLen {
			rec, next, err := parseFrame(data[:dataLen], off)
			if err != nil {
				return s, fmt.Errorf("%w: %v", ErrCorrupt, err)
			}
			s.Recs = append(s.Recs, rec)
			off = next
		}
		if uint32(len(s.Recs)) != x.Count {
			return s, fmt.Errorf("%w: footer count %d but %d frames", ErrCorrupt, x.Count, len(s.Recs))
		}
		return s, nil
	}
	s := &Segment{}
	off := 0
	for off < len(data) {
		rec, next, err := parseFrame(data, off)
		if err != nil {
			return s, fmt.Errorf("%w: %d bytes lost: %v", ErrTruncated, len(data)-off, err)
		}
		s.Recs = append(s.Recs, rec)
		s.Index.Add(rec.Meta)
		off = next
	}
	return s, nil
}
