package store

import (
	"compress/flate"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"dpm/internal/obs"
)

// Config tunes a store. The zero value selects the defaults.
type Config struct {
	// Shards is the number of concurrent shard writers; records route
	// to shard machine%Shards, so one machine's records stay ordered
	// within one shard.
	Shards int
	// SegmentCap is the frame-data size that triggers rotation: when an
	// active segment reaches it, the segment is sealed (footer written)
	// and the next append starts a fresh one.
	SegmentCap int
	// CompactMin is the number of adjacent small sealed segments (under
	// half of SegmentCap) that triggers compaction into one.
	CompactMin int
	// Compress selects the segment encoding: CompressOff writes the v1
	// CRC-framed format, CompressBlocks the v2 block-compressed format
	// (see compress.go). Reads understand both regardless.
	Compress CompressMode
	// CompressLevel is the flate level for CompressBlocks; 0 selects
	// flate.BestSpeed (the ingest path cannot afford more, and the
	// archival tier recompresses at BestCompression anyway).
	CompressLevel int
	// BlockTarget is the v1-equivalent byte size of one compressed
	// block — the granularity of zone-map pruning. 0 selects
	// DefaultBlockTarget.
	BlockTarget int
	// ArchiveAfter, when non-zero, is the cpuTime age (ms behind the
	// newest record the store has seen) past which cold sealed segments
	// roll into the archival tier: re-encoded at BestCompression, up to
	// archiveRunMax segments merged per archive file. Archival preserves
	// every record; only its encoding changes.
	ArchiveAfter uint64
	// RetainFor, when non-zero, is the retention horizon (cpuTime ms):
	// a sealed segment whose MaxTime has fallen more than RetainFor
	// behind the newest record is expired — removed, records and all —
	// on the next maintenance pass.
	RetainFor uint64
	// Obs is the registry the store's counters and latency histograms
	// live in (store.*); nil gets a private registry.
	Obs *obs.Registry
}

// Default configuration values.
const (
	DefaultShards     = 4
	DefaultSegmentCap = 32 << 10
	DefaultCompactMin = 4

	// archiveRunMax caps how many cold segments one archival pass merges
	// into a single tier-1 file.
	archiveRunMax = 8
)

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = DefaultShards
	}
	if c.SegmentCap <= 0 {
		c.SegmentCap = DefaultSegmentCap
	}
	if c.CompactMin <= 0 {
		c.CompactMin = DefaultCompactMin
	}
	if c.BlockTarget <= 0 {
		c.BlockTarget = DefaultBlockTarget
	}
	return c
}

// SegmentInfo describes one segment file of a store.
type SegmentInfo struct {
	Name  string
	Shard int
	// Start and End are the segment sequence range the file covers;
	// rotation produces single-sequence segments and compaction or
	// archival widens the range.
	Start, End int
	// Bytes is the v1-equivalent frame-data size — what the records
	// would occupy CRC-framed, whatever the on-disk encoding — so
	// rotation and compaction thresholds mean the same thing in both
	// formats.
	Bytes int
	// DiskBytes is the sealed file's on-disk size (0 while active);
	// Bytes/DiskBytes is the segment's compression ratio.
	DiskBytes int
	// Tier is 0 for the hot tier, 1 for the archival tier.
	Tier   int
	Index  Index
	Sealed bool
}

func segName(shard, start, end, tier int) string {
	prefix := "s"
	if tier > 0 {
		prefix = "a"
	}
	return fmt.Sprintf("%s%d-%06d-%06d.seg", prefix, shard, start, end)
}

func parseSegName(name string) (shard, start, end, tier int, ok bool) {
	if !strings.HasSuffix(name, ".seg") {
		return 0, 0, 0, 0, false
	}
	format := "s%d-%d-%d.seg"
	switch {
	case strings.HasPrefix(name, "s"):
	case strings.HasPrefix(name, "a"):
		tier, format = 1, "a%d-%d-%d.seg"
	default:
		return 0, 0, 0, 0, false
	}
	if n, err := fmt.Sscanf(name, format, &shard, &start, &end); err != nil || n != 3 {
		return 0, 0, 0, 0, false
	}
	if shard < 0 || start < 1 || end < start {
		return 0, 0, 0, 0, false
	}
	return shard, start, end, tier, true
}

// Stats counts a store's write-side traffic, in the style of the
// kernel meter's buffer statistics.
type Stats struct {
	Appends     int // records appended
	Rotations   int // segments sealed because they reached SegmentCap
	Compactions int // compaction runs performed
	Recovered   int // segments re-sealed during Open recovery
	Archived    int // segments rolled into the archival tier
	Expired     int // segments removed past the retention horizon
}

// Store is a sharded segment writer. All methods are safe for
// concurrent use; appends to different shards do not contend.
type Store struct {
	be  Backend
	cfg Config

	shards []*shard

	statsMu sync.Mutex
	stats   Stats

	// maxSeen is the newest cpuTime any append has carried — the "now"
	// that retention and archival ages are measured against.
	maxSeen atomic.Uint64

	// obs handles, resolved once in Open. The Stats struct above stays
	// the legacy view; these mirror it into the machine registry plus
	// the latencies the struct cannot carry.
	obsAppends     *obs.Counter
	obsRotations   *obs.Counter
	obsCompactions *obs.Counter
	obsRecovered   *obs.Counter
	obsAbandoned   *obs.Counter
	obsArchived    *obs.Counter
	obsArchiveRuns *obs.Counter
	obsExpiredSegs *obs.Counter
	obsExpiredRecs *obs.Counter
	obsBlocks      *obs.Counter
	obsRawBytes    *obs.Counter
	obsCompBytes   *obs.Counter
	appendNS       *obs.Histogram
	rotateNS       *obs.Histogram
	compactNS      *obs.Histogram
	archiveNS      *obs.Histogram
}

type shard struct {
	mu      sync.Mutex
	id      int
	nextSeq int
	active  *SegmentInfo // nil when no segment is being filled
	sealed  []*SegmentInfo
	// scratch is the shard's reused framing buffer; append paths build
	// frames here under mu so the steady state allocates nothing.
	// pending holds the metadata of the scratch frames, folded into the
	// active segment's index only once the backend write succeeds.
	scratch []byte
	pending []Meta
	// cw is the shard's v2 encoder (nil with CompressOff): records
	// stage through it instead of the scratch framing buffer.
	cw *compWriter
}

// Open opens (or creates) the store behind a backend. Existing sealed
// segments are adopted as they are; an unsealed or damaged segment —
// what a crashed writer leaves behind — is recovered by rewriting its
// valid record prefix as a sealed segment, so every record that
// survived the crash is indexed and queryable.
func Open(be Backend, cfg Config) (*Store, error) {
	cfg = cfg.withDefaults()
	names, err := be.List()
	if err != nil {
		return nil, err
	}
	reg := cfg.Obs
	if reg == nil {
		reg = obs.NewRegistry()
	}
	s := &Store{
		be: be, cfg: cfg,
		obsAppends:     reg.Counter("store.appends"),
		obsRotations:   reg.Counter("store.rotations"),
		obsCompactions: reg.Counter("store.compactions"),
		obsRecovered:   reg.Counter("store.recovered"),
		obsAbandoned:   reg.Counter("store.abandoned"),
		obsArchived:    reg.Counter("store.archived_segments"),
		obsArchiveRuns: reg.Counter("store.archive_runs"),
		obsExpiredSegs: reg.Counter("store.expired_segments"),
		obsExpiredRecs: reg.Counter("store.expired_records"),
		obsBlocks:      reg.Counter("store.blocks"),
		obsRawBytes:    reg.Counter("store.raw_bytes"),
		obsCompBytes:   reg.Counter("store.compressed_bytes"),
		appendNS:       reg.Histogram("store.append_ns"),
		rotateNS:       reg.Histogram("store.rotate_ns"),
		compactNS:      reg.Histogram("store.compact_ns"),
		archiveNS:      reg.Histogram("store.archive_ns"),
	}
	byShard := make(map[int][]*SegmentInfo)
	maxShard := cfg.Shards - 1
	for _, name := range names {
		sh, start, end, tier, ok := parseSegName(name)
		if !ok {
			continue
		}
		if sh > maxShard {
			maxShard = sh
		}
		byShard[sh] = append(byShard[sh], &SegmentInfo{Name: name, Shard: sh, Start: start, End: end, Tier: tier})
	}
	for i := 0; i <= maxShard; i++ {
		sh := &shard{id: i, nextSeq: 1}
		if cfg.Compress == CompressBlocks {
			sh.cw = newCompWriter(cfg.CompressLevel, cfg.BlockTarget)
		}
		infos := byShard[i]
		sort.Slice(infos, func(a, b int) bool { return infos[a].Start < infos[b].Start })
		for _, info := range infos {
			data, err := be.Read(info.Name)
			if err != nil {
				return nil, err
			}
			seg, perr := ParseSegment(data)
			if perr != nil || !seg.Sealed {
				data, err = s.rewriteSealed(info.Name, seg.Recs)
				if err != nil {
					return nil, err
				}
				seg.Index = indexOf(seg.Recs)
				s.stats.Recovered++
				s.obsRecovered.Inc()
			}
			info.Index = seg.Index
			info.Sealed = true
			info.Bytes = 0
			info.DiskBytes = len(data)
			for _, r := range seg.Recs {
				info.Bytes += FrameSize(len(r.Line))
			}
			if seg.Index.Count > 0 && seg.Index.MaxTime > s.maxSeen.Load() {
				s.maxSeen.Store(seg.Index.MaxTime)
			}
			sh.sealed = append(sh.sealed, info)
			if info.End >= sh.nextSeq {
				sh.nextSeq = info.End + 1
			}
		}
		s.shards = append(s.shards, sh)
	}
	return s, nil
}

func indexOf(recs []Rec) Index {
	var x Index
	for _, r := range recs {
		x.Add(r.Meta)
	}
	return x
}

// rewriteSealed replaces a segment file with a sealed re-encoding of
// the given records in the store's configured format, returning the
// bytes written.
func (s *Store) rewriteSealed(name string, recs []Rec) ([]byte, error) {
	data, err := encodeRecs(recs, s.cfg)
	if err != nil {
		return nil, err
	}
	return data, s.be.Create(name, data)
}

// encodeRecs encodes records as one sealed segment in the configured
// format.
func encodeRecs(recs []Rec, cfg Config) ([]byte, error) {
	if cfg.Compress == CompressBlocks {
		return encodeSegmentV2(recs, cfg.CompressLevel, cfg.BlockTarget)
	}
	var frames []byte
	for _, r := range recs {
		frames = AppendFrame(frames, r.Meta, r.Line)
	}
	return AppendFooter(frames, indexOf(recs), uint32(len(frames))), nil
}

// openLocked ensures the shard has an active segment. Caller holds
// sh.mu.
func (sh *shard) openLocked() {
	if sh.active == nil {
		seq := sh.nextSeq
		sh.nextSeq++
		sh.active = &SegmentInfo{Name: segName(sh.id, seq, seq, 0), Shard: sh.id, Start: seq, End: seq}
		if sh.cw != nil {
			sh.cw.openSegment()
		}
	}
}

// noteTime folds one flushed batch's newest cpuTime into the store's
// high-water mark.
func (s *Store) noteTime(t uint64) {
	for {
		cur := s.maxSeen.Load()
		if t <= cur || s.maxSeen.CompareAndSwap(cur, t) {
			return
		}
	}
}

// stagedLocked is the v1-equivalent size of the shard's staged-but-
// unflushed records. Caller holds sh.mu.
func (s *Store) stagedLocked(sh *shard) int {
	if sh.cw != nil {
		return sh.cw.stagedV1
	}
	return len(sh.scratch)
}

// flushLocked writes the shard's staged records to the active segment,
// folds the pending metadata into its index, and — when the segment
// has reached the cap — seals, compacts, and runs retention
// maintenance. Caller holds sh.mu.
func (s *Store) flushLocked(sh *shard, rotations *int) error {
	if sh.cw != nil {
		return s.flushCompressedLocked(sh, rotations)
	}
	return s.flushScratchLocked(sh, rotations)
}

// flushScratchLocked is flushLocked's v1 half. On a backend error the
// scratch frames are dropped unindexed, so the in-memory index never
// gets ahead of the file. Caller holds sh.mu.
func (s *Store) flushScratchLocked(sh *shard, rotations *int) error {
	if len(sh.scratch) == 0 {
		return nil
	}
	err := s.be.Append(sh.active.Name, sh.scratch)
	n := len(sh.scratch)
	sh.scratch = sh.scratch[:0]
	if err != nil {
		sh.pending = sh.pending[:0]
		return err
	}
	sh.active.Bytes += n
	s.foldPendingLocked(sh, nil)
	if sh.active.Bytes >= s.cfg.SegmentCap {
		if err := s.sealLocked(sh); err != nil {
			return err
		}
		*rotations++
		if err := s.compactLocked(sh); err != nil {
			return err
		}
		return s.maintainLocked(sh)
	}
	return nil
}

// flushCompressedLocked is flushLocked's v2 half: push the staged
// payload through the shard's DEFLATE stream (ending on a sync marker,
// so what lands in the file is a decodable prefix) and append the
// compressed bytes. A backend error abandons the whole active segment
// — the encoder's dictionary and front-coding state can no longer be
// reconciled with the file, whose durable prefix the next Open
// salvages. Caller holds sh.mu.
func (s *Store) flushCompressedLocked(sh *shard, rotations *int) error {
	w := sh.cw
	if w.stagedN == 0 {
		return nil
	}
	stagedV1 := w.stagedV1
	if err := w.flushStaged(true); err != nil {
		s.abandonLocked(sh)
		return err
	}
	err := s.be.Append(sh.active.Name, w.sink.buf)
	w.sink.buf = w.sink.buf[:0]
	if err != nil {
		s.abandonLocked(sh)
		return err
	}
	sh.active.Bytes += stagedV1
	s.foldPendingLocked(sh, w)
	if sh.active.Bytes >= s.cfg.SegmentCap {
		if err := s.sealLocked(sh); err != nil {
			return err
		}
		*rotations++
		if err := s.compactLocked(sh); err != nil {
			return err
		}
		return s.maintainLocked(sh)
	}
	return nil
}

// foldPendingLocked folds the pending metadata into the active
// segment's index (and the current block's zone map, when compressing)
// after a successful backend write. Caller holds sh.mu.
func (s *Store) foldPendingLocked(sh *shard, w *compWriter) {
	var tmax uint64
	for _, m := range sh.pending {
		sh.active.Index.Add(m)
		if w != nil {
			w.foldMeta(m)
		}
		if uint64(m.Time) > tmax {
			tmax = uint64(m.Time)
		}
	}
	sh.pending = sh.pending[:0]
	s.noteTime(tmax)
}

// abandonLocked drops the active segment after a failed compressed
// write: its in-memory encoder state is unrecoverable, so the segment
// is orphaned unindexed and its durable prefix left for the next
// Open's salvage. Caller holds sh.mu.
func (s *Store) abandonLocked(sh *shard) {
	sh.pending = sh.pending[:0]
	if sh.cw != nil {
		sh.cw.sink.buf = sh.cw.sink.buf[:0]
	}
	sh.active = nil
	s.obsAbandoned.Inc()
}

// Append routes one record to its shard and appends it; when the
// shard's active segment reaches SegmentCap it is sealed and, if
// enough small sealed segments have piled up, compacted.
func (s *Store) Append(m Meta, line string) error {
	// Counted but not span-timed: a per-record clock pair would cost
	// ~25% of this path. store.append_ns is observed per batch in
	// AppendBatch, the path the filter actually flushes through.
	sh := s.shards[int(m.Machine)%len(s.shards)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.openLocked()
	if sh.cw != nil {
		sh.cw.lineBuf = append(sh.cw.lineBuf[:0], line...)
		if err := sh.cw.stage(m, sh.cw.lineBuf); err != nil {
			s.abandonLocked(sh)
			return err
		}
	} else {
		sh.scratch = AppendFrame(sh.scratch[:0], m, line)
	}
	sh.pending = append(sh.pending[:0], m)
	var rotations int
	if err := s.flushLocked(sh, &rotations); err != nil {
		return err
	}
	s.statsMu.Lock()
	s.stats.Appends++
	s.stats.Rotations += rotations
	s.statsMu.Unlock()
	s.obsAppends.Inc()
	s.obsRotations.Add(int64(rotations))
	return nil
}

// BatchRec is one record of an AppendBatch call. Line aliases
// caller-owned memory and is fully consumed before AppendBatch
// returns, so callers can reuse the backing buffer.
type BatchRec struct {
	Meta Meta
	Line []byte
}

// AppendBatch appends a batch of records, visiting each shard once:
// all of a shard's records are framed into its reused scratch buffer
// and written under one lock acquisition, with a backend write per
// segment-cap boundary instead of per record. The filter's dual-sink
// flush calls this once per Recv. Equivalent to appending the records
// one at a time except that rotation is checked at batch granularity
// within a shard, so a segment may overshoot SegmentCap by at most one
// batch.
func (s *Store) AppendBatch(recs []BatchRec) error {
	if len(recs) == 0 {
		return nil
	}
	span := obs.StartSpan(s.appendNS)
	nshards := len(s.shards)
	// One pass over the batch builds a shard-presence bitmask, so shards
	// with no records in this batch are skipped without taking their
	// locks — with concurrent ingest workers each flushing small batches,
	// most shards are usually absent from any given batch.
	var present uint64
	if nshards <= 64 {
		for i := range recs {
			present |= 1 << (int(recs[i].Meta.Machine) % nshards)
		}
	} else {
		present = ^uint64(0)
	}
	appends, rotations := 0, 0
	for id, sh := range s.shards {
		if nshards <= 64 && present&(1<<id) == 0 {
			continue
		}
		sh.mu.Lock()
		sh.scratch, sh.pending = sh.scratch[:0], sh.pending[:0]
		for i := range recs {
			if int(recs[i].Meta.Machine)%nshards != id {
				continue
			}
			sh.openLocked()
			if sh.cw != nil {
				if err := sh.cw.stage(recs[i].Meta, recs[i].Line); err != nil {
					s.abandonLocked(sh)
					sh.mu.Unlock()
					return err
				}
			} else {
				sh.scratch = AppendFrameBytes(sh.scratch, recs[i].Meta, recs[i].Line)
			}
			sh.pending = append(sh.pending, recs[i].Meta)
			appends++
			if sh.active.Bytes+s.stagedLocked(sh) >= s.cfg.SegmentCap {
				if err := s.flushLocked(sh, &rotations); err != nil {
					sh.mu.Unlock()
					return err
				}
			}
		}
		err := s.flushLocked(sh, &rotations)
		sh.mu.Unlock()
		if err != nil {
			return err
		}
	}
	s.statsMu.Lock()
	s.stats.Appends += appends
	s.stats.Rotations += rotations
	s.statsMu.Unlock()
	s.obsAppends.Add(int64(appends))
	s.obsRotations.Add(int64(rotations))
	span.End()
	return nil
}

// sealLocked writes the active segment's footer and retires it to the
// sealed list. Caller holds sh.mu.
func (s *Store) sealLocked(sh *shard) error {
	a := sh.active
	if a == nil || a.Index.Count == 0 {
		return nil
	}
	span := obs.StartSpan(s.rotateNS)
	if sh.cw != nil {
		tail, disk, err := sh.cw.seal(a.Index, a.Bytes)
		if err != nil {
			s.abandonLocked(sh)
			return err
		}
		if err := s.be.Append(a.Name, tail); err != nil {
			s.abandonLocked(sh)
			return err
		}
		a.DiskBytes = disk
		s.obsBlocks.Add(int64(len(sh.cw.blocks)))
		s.obsRawBytes.Add(int64(a.Bytes))
		s.obsCompBytes.Add(int64(disk))
	} else {
		footer := AppendFooter(nil, a.Index, uint32(a.Bytes))
		if err := s.be.Append(a.Name, footer); err != nil {
			return err
		}
		a.DiskBytes = a.Bytes + FooterSize
	}
	a.Sealed = true
	sh.sealed = append(sh.sealed, a)
	sh.active = nil
	span.End()
	return nil
}

// compactLocked merges the trailing run of small sealed segments into
// one when the run reaches CompactMin — the store's answer to a slow
// writer being sealed repeatedly by Flush, so segment count stays
// proportional to data volume. Caller holds sh.mu.
func (s *Store) compactLocked(sh *shard) error {
	small := func(in *SegmentInfo) bool { return in.Tier == 0 && in.Bytes*2 < s.cfg.SegmentCap }
	i := len(sh.sealed)
	for i > 0 && small(sh.sealed[i-1]) {
		i--
	}
	run := sh.sealed[i:]
	if len(run) < s.cfg.CompactMin {
		return nil
	}
	span := obs.StartSpan(s.compactNS)
	recs, x, rawBytes, err := s.readRun(run)
	if err != nil {
		return err
	}
	out, err := encodeRecs(recs, s.cfg)
	if err != nil {
		return err
	}
	merged := &SegmentInfo{
		Name:  segName(sh.id, run[0].Start, run[len(run)-1].End, 0),
		Shard: sh.id, Start: run[0].Start, End: run[len(run)-1].End,
		Bytes: rawBytes, DiskBytes: len(out), Index: x, Sealed: true,
	}
	if err := s.be.Create(merged.Name, out); err != nil {
		return err
	}
	for _, info := range run {
		if info.Name != merged.Name {
			_ = s.be.Remove(info.Name)
		}
	}
	sh.sealed = append(sh.sealed[:i], merged)
	s.statsMu.Lock()
	s.stats.Compactions++
	s.statsMu.Unlock()
	s.obsCompactions.Inc()
	span.End()
	return nil
}

// readRun reads and parses a run of sealed segments, returning their
// records with the merged index and v1-equivalent size.
func (s *Store) readRun(run []*SegmentInfo) ([]Rec, Index, int, error) {
	var recs []Rec
	var x Index
	rawBytes := 0
	for _, info := range run {
		data, err := s.be.Read(info.Name)
		if err != nil {
			return nil, x, 0, err
		}
		seg, err := ParseSegment(data)
		if err != nil {
			return nil, x, 0, err
		}
		for _, r := range seg.Recs {
			x.Add(r.Meta)
			rawBytes += FrameSize(len(r.Line))
		}
		recs = append(recs, seg.Recs...)
	}
	return recs, x, rawBytes, nil
}

// maintainLocked runs the shard's retention pass: expire sealed
// segments beyond the retention horizon, then roll the oldest run of
// cold hot-tier segments into one archival-tier segment (re-encoded at
// BestCompression with larger blocks — cold data trades decode cost
// for space). Ages are cpuTime distances from the newest record the
// store has seen, so retention advances with the workload's clock, not
// the host's. Caller holds sh.mu.
func (s *Store) maintainLocked(sh *shard) error {
	if s.cfg.RetainFor == 0 && s.cfg.ArchiveAfter == 0 {
		return nil
	}
	maxSeen := s.maxSeen.Load()
	if s.cfg.RetainFor > 0 {
		kept := sh.sealed[:0]
		expired, expiredRecs := 0, 0
		for _, info := range sh.sealed {
			if info.Index.MaxTime+s.cfg.RetainFor < maxSeen {
				if err := s.be.Remove(info.Name); err == nil {
					expired++
					expiredRecs += int(info.Index.Count)
					continue
				}
			}
			kept = append(kept, info)
		}
		sh.sealed = kept
		if expired > 0 {
			s.statsMu.Lock()
			s.stats.Expired += expired
			s.statsMu.Unlock()
			s.obsExpiredSegs.Add(int64(expired))
			s.obsExpiredRecs.Add(int64(expiredRecs))
		}
	}
	if s.cfg.ArchiveAfter == 0 {
		return nil
	}
	// The oldest contiguous run of cold hot-tier segments; archives
	// already at the front of the list are skipped, never re-archived.
	i := 0
	for i < len(sh.sealed) && sh.sealed[i].Tier != 0 {
		i++
	}
	j := i
	for j < len(sh.sealed) && j-i < archiveRunMax &&
		sh.sealed[j].Tier == 0 && sh.sealed[j].Index.MaxTime+s.cfg.ArchiveAfter < maxSeen {
		j++
	}
	if j == i {
		return nil
	}
	// A lone cold segment waits another ArchiveAfter before archiving
	// alone: under continuous ingest maintenance runs at every
	// rotation, so segments cool one rotation apart and would otherwise
	// each become a single-segment archive — recompressed but never
	// merged. Deferring the run start lets neighbors cool and join;
	// a straggler with no neighbors still archives at twice the age.
	if j == i+1 && sh.sealed[i].Index.MaxTime+2*s.cfg.ArchiveAfter >= maxSeen {
		return nil
	}
	span := obs.StartSpan(s.archiveNS)
	run := sh.sealed[i:j]
	recs, x, rawBytes, err := s.readRun(run)
	if err != nil {
		return err
	}
	out, err := encodeSegmentV2(recs, flate.BestCompression, 4*s.cfg.BlockTarget)
	if err != nil {
		return err
	}
	merged := &SegmentInfo{
		Name:  segName(sh.id, run[0].Start, run[len(run)-1].End, 1),
		Shard: sh.id, Start: run[0].Start, End: run[len(run)-1].End,
		Bytes: rawBytes, DiskBytes: len(out), Tier: 1, Index: x, Sealed: true,
	}
	if err := s.be.Create(merged.Name, out); err != nil {
		return err
	}
	for _, info := range run {
		_ = s.be.Remove(info.Name)
	}
	sh.sealed[i] = merged
	sh.sealed = append(sh.sealed[:i+1], sh.sealed[j:]...)
	s.statsMu.Lock()
	s.stats.Archived += len(run)
	s.statsMu.Unlock()
	s.obsArchived.Add(int64(len(run)))
	s.obsArchiveRuns.Inc()
	span.End()
	return nil
}

// Maintain runs the retention pass (expiry + archival) on every shard
// now, instead of waiting for the next rotation to trigger it.
func (s *Store) Maintain() error {
	for _, sh := range s.shards {
		sh.mu.Lock()
		err := s.maintainLocked(sh)
		sh.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// Flush seals every non-empty active segment, making all appended
// records visible behind footers (an unsealed segment is still
// readable, but must be scanned).
func (s *Store) Flush() error {
	for _, sh := range s.shards {
		sh.mu.Lock()
		err := s.sealLocked(sh)
		if err == nil {
			err = s.compactLocked(sh)
		}
		if err == nil {
			err = s.maintainLocked(sh)
		}
		sh.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// Stats returns a snapshot of the write-side counters.
func (s *Store) Stats() Stats {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	return s.stats
}

// Segments returns a snapshot of every segment's metadata, sealed and
// active, in shard order.
func (s *Store) Segments() []SegmentInfo {
	var out []SegmentInfo
	for _, sh := range s.shards {
		sh.mu.Lock()
		for _, info := range sh.sealed {
			out = append(out, *info)
		}
		if sh.active != nil {
			out = append(out, *sh.active)
		}
		sh.mu.Unlock()
	}
	return out
}

// ReaderSegment is one segment as seen by a Reader: its footer index
// when sealed (usable for pruning without touching the frames), and
// its raw bytes for when it must actually be scanned.
type ReaderSegment struct {
	Name   string
	Shard  int
	Start  int
	Tier   int
	Index  Index
	Sealed bool
	data   []byte
	// Sealed v1 segments record where their frames end; sealed v2
	// segments carry the parsed footer (dictionary + block table).
	dataLen int
	v2      *footerV2
}

// Load parses the segment's records. An unsealed segment with a torn
// tail yields its valid prefix and ErrTruncated.
func (rs *ReaderSegment) Load() (*Segment, error) {
	return ParseSegment(rs.data)
}

// RawBytes returns the segment's v1-equivalent (uncompressed framed)
// size, the numerator of its compression ratio.
func (rs *ReaderSegment) RawBytes() int {
	if rs.v2 != nil {
		return rs.v2.RawTotal
	}
	if rs.Sealed {
		return rs.dataLen
	}
	return len(rs.data)
}

// DiskBytes returns the segment's on-disk size.
func (rs *ReaderSegment) DiskBytes() int { return len(rs.data) }

// Reader is a point-in-time read-only view of a store: the segment
// files present at OpenReader, grouped by shard in rotation order.
// Sealed segments expose their footer index so callers can prune them
// without parsing any frames.
type Reader struct {
	shards [][]*ReaderSegment
}

// OpenReader snapshots the store behind a backend. It reads each
// segment file once and parses footers only; frame parsing is deferred
// to ReaderSegment.Load so pruned segments never pay it.
func OpenReader(be Backend) (*Reader, error) {
	names, err := be.List()
	if err != nil {
		return nil, err
	}
	byShard := make(map[int][]*ReaderSegment)
	maxShard := -1
	for _, name := range names {
		sh, start, _, tier, ok := parseSegName(name)
		if !ok {
			continue
		}
		data, err := be.Read(name)
		if err != nil {
			return nil, err
		}
		rs := &ReaderSegment{Name: name, Shard: sh, Start: start, Tier: tier, data: data}
		if x, dataLen, ok := ParseFooter(data); ok {
			rs.Index = x
			rs.dataLen = dataLen
			rs.Sealed = true
		} else if f, ok := parseFooterV2(data); ok {
			rs.Index = f.Index
			rs.v2 = f
			rs.Sealed = true
		}
		if sh > maxShard {
			maxShard = sh
		}
		byShard[sh] = append(byShard[sh], rs)
	}
	r := &Reader{}
	for i := 0; i <= maxShard; i++ {
		segs := byShard[i]
		sort.Slice(segs, func(a, b int) bool { return segs[a].Start < segs[b].Start })
		r.shards = append(r.shards, segs)
	}
	return r, nil
}

// Shards returns the reader's segments grouped by shard, in rotation
// order within each shard. Callers must not modify the slices.
func (r *Reader) Shards() [][]*ReaderSegment { return r.shards }

// NumSegments returns the total number of segments in the snapshot.
func (r *Reader) NumSegments() int {
	n := 0
	for _, segs := range r.shards {
		n += len(segs)
	}
	return n
}
