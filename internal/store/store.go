package store

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"dpm/internal/obs"
)

// Config tunes a store. The zero value selects the defaults.
type Config struct {
	// Shards is the number of concurrent shard writers; records route
	// to shard machine%Shards, so one machine's records stay ordered
	// within one shard.
	Shards int
	// SegmentCap is the frame-data size that triggers rotation: when an
	// active segment reaches it, the segment is sealed (footer written)
	// and the next append starts a fresh one.
	SegmentCap int
	// CompactMin is the number of adjacent small sealed segments (under
	// half of SegmentCap) that triggers compaction into one.
	CompactMin int
	// Obs is the registry the store's counters and latency histograms
	// live in (store.*); nil gets a private registry.
	Obs *obs.Registry
}

// Default configuration values.
const (
	DefaultShards     = 4
	DefaultSegmentCap = 32 << 10
	DefaultCompactMin = 4
)

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = DefaultShards
	}
	if c.SegmentCap <= 0 {
		c.SegmentCap = DefaultSegmentCap
	}
	if c.CompactMin <= 0 {
		c.CompactMin = DefaultCompactMin
	}
	return c
}

// SegmentInfo describes one segment file of a store.
type SegmentInfo struct {
	Name  string
	Shard int
	// Start and End are the segment sequence range the file covers;
	// rotation produces single-sequence segments and compaction widens
	// the range.
	Start, End int
	// Bytes is the frame-data size (footer excluded).
	Bytes  int
	Index  Index
	Sealed bool
}

func segName(shard, start, end int) string {
	return fmt.Sprintf("s%d-%06d-%06d.seg", shard, start, end)
}

func parseSegName(name string) (shard, start, end int, ok bool) {
	if !strings.HasSuffix(name, ".seg") || !strings.HasPrefix(name, "s") {
		return 0, 0, 0, false
	}
	if n, err := fmt.Sscanf(name, "s%d-%d-%d.seg", &shard, &start, &end); err != nil || n != 3 {
		return 0, 0, 0, false
	}
	if shard < 0 || start < 1 || end < start {
		return 0, 0, 0, false
	}
	return shard, start, end, true
}

// Stats counts a store's write-side traffic, in the style of the
// kernel meter's buffer statistics.
type Stats struct {
	Appends     int // records appended
	Rotations   int // segments sealed because they reached SegmentCap
	Compactions int // compaction runs performed
	Recovered   int // segments re-sealed during Open recovery
}

// Store is a sharded segment writer. All methods are safe for
// concurrent use; appends to different shards do not contend.
type Store struct {
	be  Backend
	cfg Config

	shards []*shard

	statsMu sync.Mutex
	stats   Stats

	// obs handles, resolved once in Open. The Stats struct above stays
	// the legacy view; these mirror it into the machine registry plus
	// the latencies the struct cannot carry.
	obsAppends     *obs.Counter
	obsRotations   *obs.Counter
	obsCompactions *obs.Counter
	obsRecovered   *obs.Counter
	appendNS       *obs.Histogram
	rotateNS       *obs.Histogram
	compactNS      *obs.Histogram
}

type shard struct {
	mu      sync.Mutex
	id      int
	nextSeq int
	active  *SegmentInfo // nil when no segment is being filled
	sealed  []*SegmentInfo
	// scratch is the shard's reused framing buffer; append paths build
	// frames here under mu so the steady state allocates nothing.
	// pending holds the metadata of the scratch frames, folded into the
	// active segment's index only once the backend write succeeds.
	scratch []byte
	pending []Meta
}

// Open opens (or creates) the store behind a backend. Existing sealed
// segments are adopted as they are; an unsealed or damaged segment —
// what a crashed writer leaves behind — is recovered by rewriting its
// valid record prefix as a sealed segment, so every record that
// survived the crash is indexed and queryable.
func Open(be Backend, cfg Config) (*Store, error) {
	cfg = cfg.withDefaults()
	names, err := be.List()
	if err != nil {
		return nil, err
	}
	reg := cfg.Obs
	if reg == nil {
		reg = obs.NewRegistry()
	}
	s := &Store{
		be: be, cfg: cfg,
		obsAppends:     reg.Counter("store.appends"),
		obsRotations:   reg.Counter("store.rotations"),
		obsCompactions: reg.Counter("store.compactions"),
		obsRecovered:   reg.Counter("store.recovered"),
		appendNS:       reg.Histogram("store.append_ns"),
		rotateNS:       reg.Histogram("store.rotate_ns"),
		compactNS:      reg.Histogram("store.compact_ns"),
	}
	byShard := make(map[int][]*SegmentInfo)
	maxShard := cfg.Shards - 1
	for _, name := range names {
		sh, start, end, ok := parseSegName(name)
		if !ok {
			continue
		}
		if sh > maxShard {
			maxShard = sh
		}
		byShard[sh] = append(byShard[sh], &SegmentInfo{Name: name, Shard: sh, Start: start, End: end})
	}
	for i := 0; i <= maxShard; i++ {
		sh := &shard{id: i, nextSeq: 1}
		infos := byShard[i]
		sort.Slice(infos, func(a, b int) bool { return infos[a].Start < infos[b].Start })
		for _, info := range infos {
			data, err := be.Read(info.Name)
			if err != nil {
				return nil, err
			}
			seg, perr := ParseSegment(data)
			if perr != nil || !seg.Sealed {
				if err := rewriteSealed(be, info.Name, seg.Recs); err != nil {
					return nil, err
				}
				seg.Index = indexOf(seg.Recs)
				s.stats.Recovered++
				s.obsRecovered.Inc()
			}
			info.Index = seg.Index
			info.Sealed = true
			info.Bytes = 0
			for _, r := range seg.Recs {
				info.Bytes += FrameSize(len(r.Line))
			}
			sh.sealed = append(sh.sealed, info)
			if info.End >= sh.nextSeq {
				sh.nextSeq = info.End + 1
			}
		}
		s.shards = append(s.shards, sh)
	}
	return s, nil
}

func indexOf(recs []Rec) Index {
	var x Index
	for _, r := range recs {
		x.Add(r.Meta)
	}
	return x
}

// rewriteSealed replaces a segment file with a sealed re-encoding of
// the given records.
func rewriteSealed(be Backend, name string, recs []Rec) error {
	var frames []byte
	for _, r := range recs {
		frames = AppendFrame(frames, r.Meta, r.Line)
	}
	data := AppendFooter(frames, indexOf(recs), uint32(len(frames)))
	return be.Create(name, data)
}

// openLocked ensures the shard has an active segment. Caller holds
// sh.mu.
func (sh *shard) openLocked() {
	if sh.active == nil {
		seq := sh.nextSeq
		sh.nextSeq++
		sh.active = &SegmentInfo{Name: segName(sh.id, seq, seq), Shard: sh.id, Start: seq, End: seq}
	}
}

// flushScratchLocked writes the shard's framed-but-unwritten scratch
// bytes to the active segment, folds the pending metadata into its
// index, and — when the segment has reached the cap — seals and
// compacts it. On a backend error the scratch frames are dropped
// unindexed, so the in-memory index never gets ahead of the file.
// Caller holds sh.mu.
func (s *Store) flushScratchLocked(sh *shard, rotations *int) error {
	if len(sh.scratch) == 0 {
		return nil
	}
	err := s.be.Append(sh.active.Name, sh.scratch)
	n := len(sh.scratch)
	sh.scratch = sh.scratch[:0]
	if err != nil {
		sh.pending = sh.pending[:0]
		return err
	}
	sh.active.Bytes += n
	for _, m := range sh.pending {
		sh.active.Index.Add(m)
	}
	sh.pending = sh.pending[:0]
	if sh.active.Bytes >= s.cfg.SegmentCap {
		if err := s.sealLocked(sh); err != nil {
			return err
		}
		*rotations++
		return s.compactLocked(sh)
	}
	return nil
}

// Append routes one record to its shard and appends it; when the
// shard's active segment reaches SegmentCap it is sealed and, if
// enough small sealed segments have piled up, compacted.
func (s *Store) Append(m Meta, line string) error {
	// Counted but not span-timed: a per-record clock pair would cost
	// ~25% of this path. store.append_ns is observed per batch in
	// AppendBatch, the path the filter actually flushes through.
	sh := s.shards[int(m.Machine)%len(s.shards)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.openLocked()
	sh.scratch = AppendFrame(sh.scratch[:0], m, line)
	sh.pending = append(sh.pending[:0], m)
	var rotations int
	if err := s.flushScratchLocked(sh, &rotations); err != nil {
		return err
	}
	s.statsMu.Lock()
	s.stats.Appends++
	s.stats.Rotations += rotations
	s.statsMu.Unlock()
	s.obsAppends.Inc()
	s.obsRotations.Add(int64(rotations))
	return nil
}

// BatchRec is one record of an AppendBatch call. Line aliases
// caller-owned memory and is fully consumed before AppendBatch
// returns, so callers can reuse the backing buffer.
type BatchRec struct {
	Meta Meta
	Line []byte
}

// AppendBatch appends a batch of records, visiting each shard once:
// all of a shard's records are framed into its reused scratch buffer
// and written under one lock acquisition, with a backend write per
// segment-cap boundary instead of per record. The filter's dual-sink
// flush calls this once per Recv. Equivalent to appending the records
// one at a time except that rotation is checked at batch granularity
// within a shard, so a segment may overshoot SegmentCap by at most one
// batch.
func (s *Store) AppendBatch(recs []BatchRec) error {
	if len(recs) == 0 {
		return nil
	}
	span := obs.StartSpan(s.appendNS)
	nshards := len(s.shards)
	// One pass over the batch builds a shard-presence bitmask, so shards
	// with no records in this batch are skipped without taking their
	// locks — with concurrent ingest workers each flushing small batches,
	// most shards are usually absent from any given batch.
	var present uint64
	if nshards <= 64 {
		for i := range recs {
			present |= 1 << (int(recs[i].Meta.Machine) % nshards)
		}
	} else {
		present = ^uint64(0)
	}
	appends, rotations := 0, 0
	for id, sh := range s.shards {
		if nshards <= 64 && present&(1<<id) == 0 {
			continue
		}
		sh.mu.Lock()
		sh.scratch, sh.pending = sh.scratch[:0], sh.pending[:0]
		for i := range recs {
			if int(recs[i].Meta.Machine)%nshards != id {
				continue
			}
			sh.openLocked()
			sh.scratch = AppendFrameBytes(sh.scratch, recs[i].Meta, recs[i].Line)
			sh.pending = append(sh.pending, recs[i].Meta)
			appends++
			if sh.active.Bytes+len(sh.scratch) >= s.cfg.SegmentCap {
				if err := s.flushScratchLocked(sh, &rotations); err != nil {
					sh.mu.Unlock()
					return err
				}
			}
		}
		err := s.flushScratchLocked(sh, &rotations)
		sh.mu.Unlock()
		if err != nil {
			return err
		}
	}
	s.statsMu.Lock()
	s.stats.Appends += appends
	s.stats.Rotations += rotations
	s.statsMu.Unlock()
	s.obsAppends.Add(int64(appends))
	s.obsRotations.Add(int64(rotations))
	span.End()
	return nil
}

// sealLocked writes the active segment's footer and retires it to the
// sealed list. Caller holds sh.mu.
func (s *Store) sealLocked(sh *shard) error {
	a := sh.active
	if a == nil || a.Index.Count == 0 {
		return nil
	}
	span := obs.StartSpan(s.rotateNS)
	footer := AppendFooter(nil, a.Index, uint32(a.Bytes))
	if err := s.be.Append(a.Name, footer); err != nil {
		return err
	}
	a.Sealed = true
	sh.sealed = append(sh.sealed, a)
	sh.active = nil
	span.End()
	return nil
}

// compactLocked merges the trailing run of small sealed segments into
// one when the run reaches CompactMin — the store's answer to a slow
// writer being sealed repeatedly by Flush, so segment count stays
// proportional to data volume. Caller holds sh.mu.
func (s *Store) compactLocked(sh *shard) error {
	small := func(in *SegmentInfo) bool { return in.Bytes*2 < s.cfg.SegmentCap }
	i := len(sh.sealed)
	for i > 0 && small(sh.sealed[i-1]) {
		i--
	}
	run := sh.sealed[i:]
	if len(run) < s.cfg.CompactMin {
		return nil
	}
	span := obs.StartSpan(s.compactNS)
	var frames []byte
	var x Index
	for _, info := range run {
		data, err := s.be.Read(info.Name)
		if err != nil {
			return err
		}
		seg, err := ParseSegment(data)
		if err != nil {
			return err
		}
		for _, r := range seg.Recs {
			frames = AppendFrame(frames, r.Meta, r.Line)
			x.Add(r.Meta)
		}
	}
	merged := &SegmentInfo{
		Name:  segName(sh.id, run[0].Start, run[len(run)-1].End),
		Shard: sh.id, Start: run[0].Start, End: run[len(run)-1].End,
		Bytes: len(frames), Index: x, Sealed: true,
	}
	out := AppendFooter(frames, x, uint32(len(frames)))
	if err := s.be.Create(merged.Name, out); err != nil {
		return err
	}
	for _, info := range run {
		if info.Name != merged.Name {
			_ = s.be.Remove(info.Name)
		}
	}
	sh.sealed = append(sh.sealed[:i], merged)
	s.statsMu.Lock()
	s.stats.Compactions++
	s.statsMu.Unlock()
	s.obsCompactions.Inc()
	span.End()
	return nil
}

// Flush seals every non-empty active segment, making all appended
// records visible behind footers (an unsealed segment is still
// readable, but must be scanned).
func (s *Store) Flush() error {
	for _, sh := range s.shards {
		sh.mu.Lock()
		err := s.sealLocked(sh)
		if err == nil {
			err = s.compactLocked(sh)
		}
		sh.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// Stats returns a snapshot of the write-side counters.
func (s *Store) Stats() Stats {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	return s.stats
}

// Segments returns a snapshot of every segment's metadata, sealed and
// active, in shard order.
func (s *Store) Segments() []SegmentInfo {
	var out []SegmentInfo
	for _, sh := range s.shards {
		sh.mu.Lock()
		for _, info := range sh.sealed {
			out = append(out, *info)
		}
		if sh.active != nil {
			out = append(out, *sh.active)
		}
		sh.mu.Unlock()
	}
	return out
}

// ReaderSegment is one segment as seen by a Reader: its footer index
// when sealed (usable for pruning without touching the frames), and
// its raw bytes for when it must actually be scanned.
type ReaderSegment struct {
	Name   string
	Shard  int
	Start  int
	Index  Index
	Sealed bool
	data   []byte
}

// Load parses the segment's records. An unsealed segment with a torn
// tail yields its valid prefix and ErrTruncated.
func (rs *ReaderSegment) Load() (*Segment, error) {
	return ParseSegment(rs.data)
}

// Reader is a point-in-time read-only view of a store: the segment
// files present at OpenReader, grouped by shard in rotation order.
// Sealed segments expose their footer index so callers can prune them
// without parsing any frames.
type Reader struct {
	shards [][]*ReaderSegment
}

// OpenReader snapshots the store behind a backend. It reads each
// segment file once and parses footers only; frame parsing is deferred
// to ReaderSegment.Load so pruned segments never pay it.
func OpenReader(be Backend) (*Reader, error) {
	names, err := be.List()
	if err != nil {
		return nil, err
	}
	byShard := make(map[int][]*ReaderSegment)
	maxShard := -1
	for _, name := range names {
		sh, start, _, ok := parseSegName(name)
		if !ok {
			continue
		}
		data, err := be.Read(name)
		if err != nil {
			return nil, err
		}
		rs := &ReaderSegment{Name: name, Shard: sh, Start: start, data: data}
		if x, _, ok := ParseFooter(data); ok {
			rs.Index = x
			rs.Sealed = true
		}
		if sh > maxShard {
			maxShard = sh
		}
		byShard[sh] = append(byShard[sh], rs)
	}
	r := &Reader{}
	for i := 0; i <= maxShard; i++ {
		segs := byShard[i]
		sort.Slice(segs, func(a, b int) bool { return segs[a].Start < segs[b].Start })
		r.shards = append(r.shards, segs)
	}
	return r, nil
}

// Shards returns the reader's segments grouped by shard, in rotation
// order within each shard. Callers must not modify the slices.
func (r *Reader) Shards() [][]*ReaderSegment { return r.shards }

// NumSegments returns the total number of segments in the snapshot.
func (r *Reader) NumSegments() int {
	n := 0
	for _, segs := range r.shards {
		n += len(segs)
	}
	return n
}
