package store

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

func rec(machine uint16, t, typ, pid uint32, line string) (Meta, string) {
	return Meta{Machine: machine, Time: t, Type: typ, PID: pid}, line
}

func fill(t *testing.T, st *Store, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		m, line := rec(uint16(i%4), uint32(i*10), uint32(i%8+1), uint32(100+i%4),
			fmt.Sprintf("line %d payload padding to some reasonable width", i))
		if err := st.Append(m, line); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
}

func allRecs(t *testing.T, be Backend) []Rec {
	t.Helper()
	rd, err := OpenReader(be)
	if err != nil {
		t.Fatal(err)
	}
	var out []Rec
	for _, segs := range rd.Shards() {
		for _, rs := range segs {
			seg, err := rs.Load()
			if err != nil {
				t.Fatalf("load %s: %v", rs.Name, err)
			}
			out = append(out, seg.Recs...)
		}
	}
	return out
}

func TestStoreRoundTrip(t *testing.T) {
	be := NewMemBackend()
	st, err := Open(be, Config{})
	if err != nil {
		t.Fatal(err)
	}
	fill(t, st, 50)
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	recs := allRecs(t, be)
	if len(recs) != 50 {
		t.Fatalf("got %d records, want 50", len(recs))
	}
	// Every record must land on the shard its machine routes to, with
	// its metadata intact.
	seen := map[string]bool{}
	for _, r := range recs {
		if seen[r.Line] {
			t.Fatalf("duplicate record %q", r.Line)
		}
		seen[r.Line] = true
		if !strings.HasPrefix(r.Line, "line ") {
			t.Fatalf("mangled line %q", r.Line)
		}
	}
}

func TestStoreRotation(t *testing.T) {
	be := NewMemBackend()
	// A tiny cap so a handful of appends rotates; a huge CompactMin so
	// compaction stays out of the way.
	st, err := Open(be, Config{Shards: 1, SegmentCap: 256, CompactMin: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	fill(t, st, 40)
	if st.Stats().Rotations == 0 {
		t.Fatal("no rotations despite tiny segment cap")
	}
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	rd, err := OpenReader(be)
	if err != nil {
		t.Fatal(err)
	}
	if rd.NumSegments() < 2 {
		t.Fatalf("got %d segments, want several", rd.NumSegments())
	}
	for _, segs := range rd.Shards() {
		for _, rs := range segs {
			if !rs.Sealed {
				t.Fatalf("segment %s not sealed after Flush", rs.Name)
			}
			if rs.Index.Count == 0 {
				t.Fatalf("segment %s has empty index", rs.Name)
			}
		}
	}
	if len(allRecs(t, be)) != 40 {
		t.Fatal("records lost across rotation")
	}
}

func TestStoreCompaction(t *testing.T) {
	be := NewMemBackend()
	st, err := Open(be, Config{Shards: 1, SegmentCap: 10 << 10, CompactMin: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Seal lots of tiny segments by flushing after every append; the
	// trailing run of small segments should collapse.
	for i := 0; i < 9; i++ {
		m, line := rec(0, uint32(i), 1, 100, fmt.Sprintf("tiny %d", i))
		if err := st.Append(m, line); err != nil {
			t.Fatal(err)
		}
		if err := st.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if st.Stats().Compactions == 0 {
		t.Fatal("no compactions despite many tiny sealed segments")
	}
	rd, err := OpenReader(be)
	if err != nil {
		t.Fatal(err)
	}
	if n := rd.NumSegments(); n >= 9 {
		t.Fatalf("compaction did not reduce segment count: %d", n)
	}
	recs := allRecs(t, be)
	if len(recs) != 9 {
		t.Fatalf("got %d records after compaction, want 9", len(recs))
	}
	// Compaction must preserve append order within the shard.
	for i, r := range recs {
		if want := fmt.Sprintf("tiny %d", i); r.Line != want {
			t.Fatalf("record %d = %q, want %q", i, r.Line, want)
		}
	}
}

func TestStoreRecovery(t *testing.T) {
	be := NewMemBackend()
	st, err := Open(be, Config{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	fill(t, st, 10)
	// The writer "crashes" without Flush: the active segment has no
	// footer. Corrupt its tail as a torn append would.
	names, _ := be.List()
	if len(names) != 1 {
		t.Fatalf("expected 1 unsealed segment, got %v", names)
	}
	data, _ := be.Read(names[0])
	if err := be.Create(names[0], data[:len(data)-3]); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(be, Config{Shards: 1})
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	if st2.Stats().Recovered != 1 {
		t.Fatalf("Recovered = %d, want 1", st2.Stats().Recovered)
	}
	recs := allRecs(t, be)
	if len(recs) != 9 {
		t.Fatalf("got %d records after recovery, want 9 (torn final append dropped)", len(recs))
	}
	// The salvage must be sealed and indexed so later queries can prune.
	rd, _ := OpenReader(be)
	for _, segs := range rd.Shards() {
		for _, rs := range segs {
			if !rs.Sealed {
				t.Fatalf("recovered segment %s not sealed", rs.Name)
			}
		}
	}
	// And the recovered store keeps accepting appends past the salvage.
	m, line := rec(0, 999, 1, 100, "after recovery")
	if err := st2.Append(m, line); err != nil {
		t.Fatal(err)
	}
	if err := st2.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(allRecs(t, be)) != 10 {
		t.Fatal("append after recovery lost")
	}
}

func TestParseSegmentSealedCorruption(t *testing.T) {
	var frames []byte
	var x Index
	for i := 0; i < 5; i++ {
		m := Meta{Machine: 1, Time: uint32(i), Type: 1, PID: 7}
		frames = AppendFrame(frames, m, fmt.Sprintf("line %d", i))
		x.Add(m)
	}
	sealed := AppendFooter(frames, x, uint32(len(frames)))

	seg, err := ParseSegment(sealed)
	if err != nil || !seg.Sealed || len(seg.Recs) != 5 {
		t.Fatalf("clean sealed parse: %v sealed=%v recs=%d", err, seg.Sealed, len(seg.Recs))
	}

	// Flip a payload byte inside a sealed segment: the frame CRC fails
	// and the damage is corruption (it cannot be a torn append — the
	// footer was written after the frames).
	bad := append([]byte(nil), sealed...)
	bad[FrameSize(6)+frameHeadSize+2] ^= 0xff
	seg, err = ParseSegment(bad)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("sealed corruption: got %v, want ErrCorrupt", err)
	}
	if len(seg.Recs) != 1 {
		t.Fatalf("corrupt sealed prefix = %d records, want 1", len(seg.Recs))
	}
}

func TestParseSegmentUnsealedTruncation(t *testing.T) {
	var frames []byte
	for i := 0; i < 5; i++ {
		frames = AppendFrame(frames, Meta{Machine: 1, Time: uint32(i)}, fmt.Sprintf("line %d", i))
	}
	// Clean unsealed scan: an active segment.
	seg, err := ParseSegment(frames)
	if err != nil || seg.Sealed || len(seg.Recs) != 5 {
		t.Fatalf("clean unsealed parse: %v sealed=%v recs=%d", err, seg.Sealed, len(seg.Recs))
	}
	if seg.Index.Count != 5 {
		t.Fatalf("unsealed scan index count = %d, want 5", seg.Index.Count)
	}
	// A torn tail: the valid prefix survives with ErrTruncated.
	seg, err = ParseSegment(frames[:len(frames)-4])
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("torn tail: got %v, want ErrTruncated", err)
	}
	if len(seg.Recs) != 4 {
		t.Fatalf("torn tail prefix = %d records, want 4", len(seg.Recs))
	}
}

func TestDirBackend(t *testing.T) {
	be := NewDirBackend(t.TempDir())
	st, err := Open(be, Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	fill(t, st, 20)
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	// A fresh backend over the same directory sees the same store — the
	// dpquery offline path.
	recs := allRecs(t, NewDirBackend(be.root))
	if len(recs) != 20 {
		t.Fatalf("got %d records through DirBackend, want 20", len(recs))
	}
	for _, name := range []string{"../escape.seg", "a/b.seg", ".hidden"} {
		if err := be.Create(name, nil); err == nil {
			t.Fatalf("Create(%q) accepted a bad name", name)
		}
	}
}

func TestSegName(t *testing.T) {
	for _, tc := range []struct {
		name  string
		ok    bool
		shard int
		tier  int
	}{
		{"s0-000001-000001.seg", true, 0, 0},
		{"s3-000007-000010.seg", true, 3, 0},
		{"a1-000002-000009.seg", true, 1, 1},
		{"s0-000002-000001.seg", false, 0, 0}, // end < start
		{"junk.seg", false, 0, 0},
		{"s0-000001-000001.log", false, 0, 0},
		{"b0-000001-000001.seg", false, 0, 0}, // unknown tier prefix
	} {
		sh, _, _, tier, ok := parseSegName(tc.name)
		if ok != tc.ok || (ok && (sh != tc.shard || tier != tc.tier)) {
			t.Fatalf("parseSegName(%q) = shard %d tier %d ok %v", tc.name, sh, tier, ok)
		}
	}
	if got := segName(2, 3, 4, 0); got != "s2-000003-000004.seg" {
		t.Fatalf("segName = %q", got)
	}
	if got := segName(2, 3, 4, 1); got != "a2-000003-000004.seg" {
		t.Fatalf("segName = %q", got)
	}
}
