package trace

import "testing"

// FuzzParseLog checks the log parser on arbitrary text; accepted
// traces must survive a Format/ParseLog round trip.
func FuzzParseLog(f *testing.F) {
	f.Add(sampleLog)
	f.Add("")
	f.Add("SEND machine=1 cpuTime=1 procTime=0 pid=1 pc=4 sock=1 msgLength=1 destNameLen=0 destName=-\n")
	f.Fuzz(func(t *testing.T, text string) {
		events, err := ParseLog([]byte(text))
		if err != nil {
			return
		}
		var relogged []byte
		for i := range events {
			relogged = append(relogged, events[i].Format()...)
			relogged = append(relogged, '\n')
		}
		again, err := ParseLog(relogged)
		if err != nil {
			t.Fatalf("re-parse failed: %v\n%s", err, relogged)
		}
		if len(again) != len(events) {
			t.Fatalf("round trip changed count %d -> %d", len(events), len(again))
		}
	})
}

// FuzzParseBinary checks the binary trace parser on arbitrary bytes.
func FuzzParseBinary(f *testing.F) {
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = ParseBinary(data)
	})
}
