package trace

import (
	"errors"
	"testing"

	"dpm/internal/meter"
)

// FuzzParseLog checks the log parser on arbitrary text; accepted
// traces must survive a Format/ParseLog round trip.
func FuzzParseLog(f *testing.F) {
	f.Add(sampleLog)
	f.Add("")
	f.Add("SEND machine=1 cpuTime=1 procTime=0 pid=1 pc=4 sock=1 msgLength=1 destNameLen=0 destName=-\n")
	// Truncated tails: a crash mid-write tears the final record.
	f.Add(sampleLog + "SEND machine=1 cpuTi")
	f.Add("FORK machine=1 cpuTime=0 procTime=0 pid=1 pc=4 newPid=2\nRECEI")
	f.Add(sampleLog + "SEND machine=1 pid=")
	f.Fuzz(func(t *testing.T, text string) {
		events, err := ParseLog([]byte(text))
		if err != nil && !errors.Is(err, ErrTruncated) {
			return
		}
		// The events — the whole trace, or the valid prefix before a
		// torn tail — must survive a Format/ParseLog round trip.
		var relogged []byte
		for i := range events {
			relogged = append(relogged, events[i].Format()...)
			relogged = append(relogged, '\n')
		}
		again, err := ParseLog(relogged)
		if err != nil {
			t.Fatalf("re-parse failed: %v\n%s", err, relogged)
		}
		if len(again) != len(events) {
			t.Fatalf("round trip changed count %d -> %d", len(events), len(again))
		}
	})
}

// FuzzParseBinary checks the binary trace parser on arbitrary bytes:
// it must never panic, and whenever it reports a truncated stream it
// must still hand back the events before the tear.
func FuzzParseBinary(f *testing.F) {
	f.Add([]byte{})
	m := meter.Msg{Header: meter.Header{Machine: 1}, Body: &meter.Fork{PID: 1, PC: 4, NewPID: 2}}
	whole := m.AppendEncode(m.Encode())
	f.Add(whole)
	f.Add(whole[:len(whole)-3]) // second record torn mid-way
	f.Add(append(append([]byte{}, whole...), 0xde, 0xad))
	f.Fuzz(func(t *testing.T, data []byte) {
		events, err := ParseBinary(data)
		if err != nil && !errors.Is(err, ErrTruncated) && events != nil && len(events) > 0 {
			t.Fatalf("non-truncation error %v returned events", err)
		}
	})
}
