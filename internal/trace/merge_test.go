package trace

import (
	"testing"
	"testing/quick"

	"dpm/internal/meter"
)

func ev(machine, pid int, cpu int64, typ meter.Type) Event {
	return Event{
		Type: typ, Event: typ.String(), Machine: machine, CPUTime: cpu,
		Fields: map[string]uint64{"pid": uint64(pid)},
		Names:  map[string]meter.Name{},
	}
}

func TestMergeOrdersByClock(t *testing.T) {
	a := []Event{ev(1, 10, 5, meter.EvSend), ev(1, 10, 20, meter.EvSend)}
	b := []Event{ev(2, 20, 10, meter.EvRecv)}
	m := Merge(a, b)
	if len(m) != 3 {
		t.Fatalf("merged %d events", len(m))
	}
	if m[0].CPUTime != 5 || m[1].CPUTime != 10 || m[2].CPUTime != 20 {
		t.Fatalf("order = %d %d %d", m[0].CPUTime, m[1].CPUTime, m[2].CPUTime)
	}
	for i := range m {
		if m[i].Seq != i {
			t.Fatalf("Seq[%d] = %d", i, m[i].Seq)
		}
	}
}

func TestMergePreservesProgramOrder(t *testing.T) {
	// Equal timestamps (the 10ms clock granularity makes them common)
	// must not reorder one process's events.
	a := []Event{
		ev(1, 10, 100, meter.EvRecvCall),
		ev(1, 10, 100, meter.EvRecv),
		ev(1, 10, 100, meter.EvSend),
	}
	m := Merge(a)
	want := []meter.Type{meter.EvRecvCall, meter.EvRecv, meter.EvSend}
	for i, w := range want {
		if m[i].Type != w {
			t.Fatalf("event %d = %v, want %v", i, m[i].Type, w)
		}
	}
}

func TestMergeEmpty(t *testing.T) {
	if got := Merge(); got != nil {
		t.Fatalf("Merge() = %v", got)
	}
	if got := Merge(nil, nil); got != nil {
		t.Fatalf("Merge(nil,nil) = %v", got)
	}
}

func TestMergeProperty(t *testing.T) {
	f := func(timesA, timesB []uint16) bool {
		var a, b []Event
		for _, tt := range timesA {
			a = append(a, ev(1, 10, int64(tt), meter.EvSend))
		}
		for _, tt := range timesB {
			b = append(b, ev(2, 20, int64(tt), meter.EvRecv))
		}
		// Per-process inputs must be clock-sorted for the invariant
		// to be meaningful (machine clocks are monotonic); number
		// them in that order.
		sortByTime(a)
		sortByTime(b)
		for i := range a {
			a[i].Fields["idx"] = uint64(i)
		}
		m := Merge(a, b)
		if len(m) != len(a)+len(b) {
			return false
		}
		// Global clock order and per-process relative order hold.
		var lastT int64 = -1
		var lastAIdx int64 = -1
		for _, e := range m {
			if e.CPUTime < lastT {
				return false
			}
			lastT = e.CPUTime
			if e.Machine == 1 {
				idx := int64(e.Fields["idx"])
				if idx < lastAIdx {
					return false
				}
				lastAIdx = idx
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func sortByTime(evs []Event) {
	for i := 1; i < len(evs); i++ {
		for j := i; j > 0 && evs[j].CPUTime < evs[j-1].CPUTime; j-- {
			evs[j], evs[j-1] = evs[j-1], evs[j]
		}
	}
}
