// Package trace parses the event records collected by filter
// processes into a form the analysis routines can interpret — the
// hand-off point between the measurement system's second stage
// (filtering) and third stage (analysis).
//
// Two encodings are supported: the text log files the standard filter
// writes (one record per line, name=value pairs), and raw binary meter
// streams (for analyses that bypass a filter).
package trace

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"dpm/internal/meter"
)

// ErrTruncated reports a trace whose final record is incomplete — the
// writer (a filter, or a kernel flushing meter buffers) died
// mid-record, as a machine crash makes routine. The parse functions
// return it alongside the valid prefix of events, so analyses can
// still use everything up to the tear; errors.Is distinguishes it from
// corruption in the middle of a trace, which stays fatal.
var ErrTruncated = errors.New("trace: truncated final record")

// Event is one parsed event record.
type Event struct {
	// Seq is the record's position in the trace, which reflects
	// arrival order at the filter.
	Seq     int
	Type    meter.Type
	Event   string
	Machine int
	// CPUTime is the local machine clock (ms); ProcTime the CPU time
	// charged to the process (ms, 10 ms granularity).
	CPUTime  int64
	ProcTime int64
	Fields   map[string]uint64
	Names    map[string]meter.Name
}

// PID returns the event's process id (0 if the field was discarded).
func (e *Event) PID() int { return int(e.Fields["pid"]) }

// Sock returns the socket identifier of the event (0 if absent).
func (e *Event) Sock() uint32 { return uint32(e.Fields["sock"]) }

// MsgLength returns the message length of send/receive events.
func (e *Event) MsgLength() int { return int(e.Fields["msgLength"]) }

// Name returns a socket-name field.
func (e *Event) Name(field string) meter.Name { return e.Names[field] }

var typeByName = map[string]meter.Type{
	"SEND":        meter.EvSend,
	"RECEIVECALL": meter.EvRecvCall,
	"RECEIVE":     meter.EvRecv,
	"SOCKET":      meter.EvSocket,
	"DUP":         meter.EvDup,
	"DESTSOCKET":  meter.EvDestSocket,
	"CONNECT":     meter.EvConnect,
	"ACCEPT":      meter.EvAccept,
	"FORK":        meter.EvFork,
	"TERMPROC":    meter.EvTermProc,
}

// ParseLog parses a standard-filter text log. A log whose final
// record fails to parse yields the valid prefix and ErrTruncated; a
// bad record anywhere else is an error.
func ParseLog(data []byte) ([]Event, error) {
	lines := strings.Split(string(data), "\n")
	lastNonEmpty := -1
	for i, line := range lines {
		if strings.TrimSpace(line) != "" {
			lastNonEmpty = i
		}
	}
	var events []Event
	for lineNo, line := range lines {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		ev, err := parseLine(line)
		if err != nil {
			if lineNo == lastNonEmpty {
				return events, fmt.Errorf("%w: line %d: %v", ErrTruncated, lineNo+1, err)
			}
			return nil, fmt.Errorf("trace: line %d: %w", lineNo+1, err)
		}
		ev.Seq = len(events)
		events = append(events, ev)
	}
	return events, nil
}

// ParseOne parses a single formatted record line (no trailing
// newline), the per-record entry point for scan paths that stream
// lines out of the store instead of splitting a whole log.
func ParseOne(line []byte) (Event, error) {
	s := strings.TrimSpace(string(line))
	if s == "" {
		return Event{}, fmt.Errorf("trace: empty record line")
	}
	return parseLine(s)
}

func parseLine(line string) (Event, error) {
	toks := strings.Fields(line)
	ev := Event{
		Event:  toks[0],
		Fields: make(map[string]uint64),
		Names:  make(map[string]meter.Name),
	}
	typ, ok := typeByName[toks[0]]
	if !ok {
		return ev, fmt.Errorf("unknown event %q", toks[0])
	}
	ev.Type = typ
	for _, tok := range toks[1:] {
		eq := strings.IndexByte(tok, '=')
		if eq <= 0 {
			return ev, fmt.Errorf("bad field %q", tok)
		}
		key, val := tok[:eq], tok[eq+1:]
		switch key {
		case "machine":
			v, err := strconv.Atoi(val)
			if err != nil {
				return ev, fmt.Errorf("bad machine %q", val)
			}
			ev.Machine = v
		case "cpuTime":
			v, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return ev, fmt.Errorf("bad cpuTime %q", val)
			}
			ev.CPUTime = v
		case "procTime":
			v, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return ev, fmt.Errorf("bad procTime %q", val)
			}
			ev.ProcTime = v
		default:
			if n, err := meter.ParseName(val); err == nil && looksLikeName(val) {
				ev.Names[key] = n
				if n.Family() == meter.AFInet {
					host, _ := n.Inet()
					ev.Fields[key] = uint64(host)
				}
				continue
			}
			v, err := strconv.ParseUint(val, 0, 64)
			if err != nil {
				return ev, fmt.Errorf("bad value for %s: %q", key, val)
			}
			ev.Fields[key] = v
		}
	}
	return ev, nil
}

func looksLikeName(val string) bool {
	return val == "-" || strings.HasPrefix(val, "inet:") ||
		strings.HasPrefix(val, "unix:") || strings.HasPrefix(val, "pair:")
}

// ParseBinary parses a raw meter byte stream. A stream that ends in
// the middle of a record (or whose tail fails to decode) yields the
// valid prefix and ErrTruncated.
func ParseBinary(data []byte) ([]Event, error) {
	msgs, rest, err := meter.DecodeStream(data)
	events := make([]Event, 0, len(msgs))
	for i, m := range msgs {
		ev := Event{
			Seq:      i,
			Type:     m.Header.TraceType,
			Event:    m.Header.TraceType.String(),
			Machine:  int(m.Header.Machine),
			CPUTime:  int64(m.Header.CPUTime),
			ProcTime: int64(m.Header.ProcTime),
			Fields:   make(map[string]uint64),
			Names:    make(map[string]meter.Name),
		}
		for _, f := range m.Body.Fields() {
			if f.IsName {
				ev.Names[f.Name] = f.Addr
				if f.Addr.Family() == meter.AFInet {
					host, _ := f.Addr.Inet()
					ev.Fields[f.Name] = uint64(host)
				}
			} else {
				ev.Fields[f.Name] = uint64(f.Value)
			}
		}
		events = append(events, ev)
	}
	if err != nil {
		return events, fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	if len(rest) != 0 {
		return events, fmt.Errorf("%w: %d trailing bytes in meter stream", ErrTruncated, len(rest))
	}
	return events, nil
}

// Format renders an event in the standard filter's log line format, so
// traces can be round-tripped and merged.
func (e *Event) Format() string {
	var b strings.Builder
	b.WriteString(e.Event)
	fmt.Fprintf(&b, " machine=%d cpuTime=%d procTime=%d", e.Machine, e.CPUTime, e.ProcTime)
	// Emit fields in the canonical per-type order when known.
	emitted := make(map[string]bool)
	for _, key := range canonicalOrder[e.Type] {
		if n, ok := e.Names[key]; ok {
			fmt.Fprintf(&b, " %s=%s", key, n.String())
			emitted[key] = true
		} else if v, ok := e.Fields[key]; ok {
			fmt.Fprintf(&b, " %s=%d", key, v)
			emitted[key] = true
		}
	}
	for key, v := range e.Fields {
		if !emitted[key] {
			if _, isName := e.Names[key]; !isName {
				fmt.Fprintf(&b, " %s=%d", key, v)
			}
		}
	}
	for key, n := range e.Names {
		if !emitted[key] {
			fmt.Fprintf(&b, " %s=%s", key, n.String())
		}
	}
	return b.String()
}

// Merge combines several traces (e.g. the logs of different filters
// collecting parts of one computation) into one, ordered by the
// machine-clock timestamps and re-sequenced. Within one machine the
// clock is monotonic so per-process program order is preserved; across
// machines the order is only as good as the clocks' rough
// correspondence (paper section 4.1) — the analysis routines rely on
// message causality, not on this order, for cross-machine claims.
func Merge(traces ...[]Event) []Event {
	var out []Event
	for _, t := range traces {
		out = append(out, t...)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].CPUTime < out[j].CPUTime })
	for i := range out {
		out[i].Seq = i
	}
	return out
}

var canonicalOrder = map[meter.Type][]string{
	meter.EvSend:       {"pid", "pc", "sock", "msgLength", "destNameLen", "destName"},
	meter.EvRecvCall:   {"pid", "pc", "sock"},
	meter.EvRecv:       {"pid", "pc", "sock", "msgLength", "sourceNameLen", "sourceName"},
	meter.EvSocket:     {"pid", "pc", "sock", "domain", "type", "protocol"},
	meter.EvDup:        {"pid", "pc", "sock", "newSock"},
	meter.EvDestSocket: {"pid", "pc", "sock"},
	meter.EvConnect:    {"pid", "pc", "sock", "sockNameLen", "peerNameLen", "sockName", "peerName"},
	meter.EvAccept:     {"pid", "pc", "sock", "newSock", "sockNameLen", "peerNameLen", "sockName", "peerName"},
	meter.EvFork:       {"pid", "pc", "newPid"},
	meter.EvTermProc:   {"pid", "pc", "status"},
}
