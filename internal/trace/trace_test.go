package trace

import (
	"errors"
	"strings"
	"testing"

	"dpm/internal/meter"
)

const sampleLog = `SEND machine=1 cpuTime=120 procTime=10 pid=7 pc=4 sock=260 msgLength=512 destNameLen=16 destName=inet:2:6100
RECEIVECALL machine=2 cpuTime=130 procTime=0 pid=9 pc=8 sock=300
RECEIVE machine=2 cpuTime=131 procTime=0 pid=9 pc=12 sock=300 msgLength=512 sourceNameLen=16 sourceName=inet:1:1024
ACCEPT machine=2 cpuTime=90 procTime=0 pid=9 pc=4 sock=290 newSock=300 sockNameLen=16 peerNameLen=0 sockName=unix:/tmp/s peerName=-
TERMPROC machine=1 cpuTime=200 procTime=20 pid=7 pc=16 status=0
`

func TestParseLog(t *testing.T) {
	events, err := ParseLog([]byte(sampleLog))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 5 {
		t.Fatalf("parsed %d events", len(events))
	}
	e := events[0]
	if e.Type != meter.EvSend || e.Machine != 1 || e.CPUTime != 120 || e.ProcTime != 10 {
		t.Fatalf("send header = %+v", e)
	}
	if e.PID() != 7 || e.Sock() != 260 || e.MsgLength() != 512 {
		t.Fatalf("send fields = %+v", e.Fields)
	}
	want := meter.InetName(2, 6100)
	if e.Name("destName") != want {
		t.Fatalf("destName = %v", e.Name("destName"))
	}
	if events[3].Name("peerName") != (meter.Name{}) {
		t.Fatalf("dash name should be zero, got %v", events[3].Name("peerName"))
	}
	if events[4].Type != meter.EvTermProc || events[4].Fields["status"] != 0 {
		t.Fatalf("termproc = %+v", events[4])
	}
	for i, e := range events {
		if e.Seq != i {
			t.Fatalf("Seq of event %d = %d", i, e.Seq)
		}
	}
}

func TestParseLogErrors(t *testing.T) {
	cases := []string{
		"BOGUS machine=1\n",
		"SEND machine=x\n",
		"SEND machine=1 noequals\n",
		"SEND machine=1 pid=notanumber\n",
	}
	for _, c := range cases {
		if _, err := ParseLog([]byte(c)); err == nil {
			t.Errorf("ParseLog(%q) succeeded", c)
		}
	}
}

func TestParseLogSkipsBlankLines(t *testing.T) {
	events, err := ParseLog([]byte("\n\nFORK machine=1 cpuTime=0 procTime=0 pid=1 pc=4 newPid=2\n\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].Type != meter.EvFork {
		t.Fatalf("events = %+v", events)
	}
}

func TestParseBinary(t *testing.T) {
	var stream []byte
	bodies := []meter.Body{
		&meter.Send{PID: 1, PC: 2, Sock: 3, MsgLength: 64, DestNameLen: 16, DestName: meter.InetName(9, 10)},
		&meter.Fork{PID: 1, PC: 4, NewPID: 2},
	}
	for _, b := range bodies {
		m := meter.Msg{Header: meter.Header{Machine: 4, CPUTime: 55, ProcTime: 10}, Body: b}
		stream = m.AppendEncode(stream)
	}
	events, err := ParseBinary(stream)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("events = %d", len(events))
	}
	if events[0].Machine != 4 || events[0].MsgLength() != 64 {
		t.Fatalf("event 0 = %+v", events[0])
	}
	if events[0].Name("destName") != meter.InetName(9, 10) {
		t.Fatalf("destName = %v", events[0].Name("destName"))
	}
	if events[1].Fields["newPid"] != 2 {
		t.Fatalf("newPid = %d", events[1].Fields["newPid"])
	}
}

func TestParseBinaryTrailing(t *testing.T) {
	m := meter.Msg{Header: meter.Header{}, Body: &meter.Fork{}}
	stream := append(m.Encode(), 0x01, 0x02)
	if _, err := ParseBinary(stream); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestFormatRoundTrip(t *testing.T) {
	events, err := ParseLog([]byte(sampleLog))
	if err != nil {
		t.Fatal(err)
	}
	var relogged strings.Builder
	for i := range events {
		relogged.WriteString(events[i].Format())
		relogged.WriteByte('\n')
	}
	again, err := ParseLog([]byte(relogged.String()))
	if err != nil {
		t.Fatalf("re-parse: %v\nlog:\n%s", err, relogged.String())
	}
	if len(again) != len(events) {
		t.Fatalf("round trip changed count: %d != %d", len(again), len(events))
	}
	for i := range events {
		a, b := events[i], again[i]
		if a.Type != b.Type || a.Machine != b.Machine || a.CPUTime != b.CPUTime || a.ProcTime != b.ProcTime {
			t.Fatalf("event %d header changed: %+v != %+v", i, a, b)
		}
		for k, v := range a.Fields {
			if b.Fields[k] != v {
				t.Fatalf("event %d field %s: %d != %d", i, k, v, b.Fields[k])
			}
		}
		for k, v := range a.Names {
			if b.Names[k] != v {
				t.Fatalf("event %d name %s: %v != %v", i, k, v, b.Names[k])
			}
		}
	}
}

func TestBinaryAndLogAgree(t *testing.T) {
	// The same message parsed from binary and from its formatted log
	// line must agree field for field.
	m := meter.Msg{
		Header: meter.Header{Machine: 3, CPUTime: 77, ProcTime: 20},
		Body:   &meter.Accept{PID: 5, PC: 6, Sock: 7, NewSock: 8, SockNameLen: 16, PeerNameLen: 16, SockName: meter.UnixName("/tmp/a"), PeerName: meter.InetName(1, 2)},
	}
	bin, err := ParseBinary(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	logEvents, err := ParseLog([]byte(bin[0].Format() + "\n"))
	if err != nil {
		t.Fatal(err)
	}
	a, b := bin[0], logEvents[0]
	if a.Type != b.Type || a.Machine != b.Machine {
		t.Fatalf("headers differ: %+v vs %+v", a, b)
	}
	for k, v := range a.Names {
		if b.Names[k] != v {
			t.Fatalf("name %s differs: %v vs %v", k, v, b.Names[k])
		}
	}
}

func TestParseLogTruncatedTail(t *testing.T) {
	// A crash tears the final record mid-write: the valid prefix comes
	// back along with ErrTruncated.
	torn := sampleLog + "SEND machine=1 cpuTi"
	events, err := ParseLog([]byte(torn))
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
	if len(events) != 5 {
		t.Fatalf("prefix has %d events, want 5", len(events))
	}
	if events[4].Type != meter.EvTermProc {
		t.Fatalf("last prefix event = %+v", events[4])
	}
}

func TestParseLogMidCorruptionStillFatal(t *testing.T) {
	// A bad record with valid records after it is corruption, not
	// truncation: no prefix is returned.
	lines := strings.Split(strings.TrimSpace(sampleLog), "\n")
	lines[2] = "GARBAGE this is not a record"
	events, err := ParseLog([]byte(strings.Join(lines, "\n")))
	if err == nil || errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v, want a non-truncation error", err)
	}
	if events != nil {
		t.Fatalf("events = %v, want nil", events)
	}
}

func TestParseBinaryTruncatedTail(t *testing.T) {
	m1 := meter.Msg{Header: meter.Header{Machine: 1}, Body: &meter.Fork{PID: 1, PC: 4, NewPID: 2}}
	m2 := meter.Msg{Header: meter.Header{Machine: 1}, Body: &meter.TermProc{PID: 2, PC: 8}}
	stream := m2.AppendEncode(m1.Encode())
	torn := stream[:len(stream)-5]
	events, err := ParseBinary(torn)
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
	if len(events) != 1 || events[0].Type != meter.EvFork {
		t.Fatalf("prefix = %+v, want the fork record", events)
	}
}
