package workloads

import (
	"time"

	"dpm/internal/core"
	"dpm/internal/kernel"
)

// ForkFanMain exercises the process-creation side of the paper's
// model: a parent forks k children (args: k), each of which inherits
// the parent's sockets and metering (sections 3.1–3.2), does a little
// work over a socketpair shared with the parent, and reports back.
// The trace shows fork events chaining into the children's own events
// — the inheritance the paper's Appendix C specifies.
func ForkFanMain(p *kernel.Process) int {
	k := argInt(p.Args(), 0, 3)
	fd1, fd2, err := p.SocketPair()
	if err != nil {
		return 1
	}
	for i := 0; i < k; i++ {
		if _, err := p.Fork(func(c *kernel.Process) int {
			c.Compute(2 * time.Millisecond)
			if _, err := c.Send(fd2, []byte("done")); err != nil {
				return 1
			}
			return 0
		}); err != nil {
			return 1
		}
	}
	// Collect one report per child through the shared socketpair.
	for got := 0; got < k; {
		data, err := p.Recv(fd1, 4*k)
		if err != nil {
			return 1
		}
		got += len(data) / 4
	}
	return 0
}

// RegisterForkFan installs the fork-fan program on every machine.
func RegisterForkFan(s *core.System) error {
	return s.RegisterWorkload("forkfan", ForkFanMain)
}
