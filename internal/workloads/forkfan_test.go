package workloads

import (
	"testing"
	"time"

	"dpm/internal/analysis"
	"dpm/internal/meter"
	"dpm/internal/trace"
)

func TestForkFanMetered(t *testing.T) {
	s, ctl, _ := newSys(t)
	if err := RegisterForkFan(s); err != nil {
		t.Fatal(err)
	}
	ctl.Exec("filter f blue")
	ctl.Exec("newjob fan")
	ctl.Exec("setflags fan fork send receive termproc")
	ctl.Exec("addprocess fan red forkfan 3")
	ctl.Exec("startjob fan")
	waitJob(t, ctl, "fan")

	events, err := s.WaitTrace("blue", "f", 10*time.Second, func(evs []trace.Event) bool {
		forks, sends := 0, 0
		for _, e := range evs {
			switch e.Type {
			case meter.EvFork:
				forks++
			case meter.EvSend:
				sends++
			}
		}
		return forks >= 3 && sends >= 3
	})
	if err != nil {
		t.Fatal(err)
	}

	// Fork events name real children whose own sends appear in the
	// trace (inherited metering).
	children := make(map[uint64]bool)
	var parent uint64
	for _, e := range events {
		if e.Type == meter.EvFork {
			parent = e.Fields["pid"]
			children[e.Fields["newPid"]] = true
		}
	}
	if len(children) != 3 {
		t.Fatalf("fork events name %d children", len(children))
	}
	sendsByChild := 0
	for _, e := range events {
		if e.Type == meter.EvSend && children[e.Fields["pid"]] {
			sendsByChild++
		}
	}
	if sendsByChild != 3 {
		t.Fatalf("children produced %d metered sends", sendsByChild)
	}

	// Happened-before: every fork precedes its child's send.
	matches := analysis.MatchMessages(events, s.MatchOptions())
	order, err := analysis.HappenedBefore(events, matches)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range events {
		if e.Type != meter.EvFork {
			continue
		}
		child := e.Fields["newPid"]
		for _, se := range events {
			if se.Type == meter.EvSend && se.Fields["pid"] == child {
				if !order.Ordered(e.Seq, se.Seq) {
					t.Fatalf("fork %d not ordered before child %d's send", e.Seq, se.Seq)
				}
			}
		}
	}

	// The parent's comm stats show the fan-in; fork count recorded.
	st := analysis.Comm(events)
	var parentStats *analysis.ProcComm
	for k, pc := range st.PerProcess {
		if uint64(k.PID) == parent && pc.Forks > 0 {
			parentStats = pc
		}
	}
	if parentStats == nil || parentStats.Forks != 3 {
		t.Fatalf("parent stats = %+v", parentStats)
	}
}
