package workloads

import (
	"fmt"
	"time"

	"dpm/internal/core"
	"dpm/internal/kernel"
	"dpm/internal/meter"
)

// PipeBasePort is the base port of pipeline stages: stage i listens on
// PipeBasePort+i.
const PipeBasePort = 7700

// PipeStageMain is one stage of a multi-machine pipeline — the shape
// of asynchronous distributed program whose performance problems the
// paper's introduction motivates. Items flow stage 1 → stage 2 → …;
// each stage charges its per-item cost and forwards. A slow stage
// starves everything downstream, which the monitor exposes through the
// waiting profile (receivecall→receive gaps) without touching the
// program.
//
// args: stage index (1-based), stage count, next stage's machine
// (empty for the last stage), item count, per-item cost in ms.
func PipeStageMain(p *kernel.Process) int {
	args := p.Args()
	stage := argInt(args, 0, 1)
	stages := argInt(args, 1, 1)
	next := ""
	if len(args) > 2 {
		next = args[2]
	}
	items := argInt(args, 3, 10)
	costMs := argInt(args, 4, 1)

	// Every stage but the first receives from upstream.
	var in *msgReader
	if stage > 1 {
		lfd, err := p.Socket(meter.AFInet, kernel.SockStream)
		if err != nil {
			return 1
		}
		if err := p.BindPort(lfd, uint16(PipeBasePort+stage)); err != nil {
			return 1
		}
		if err := p.Listen(lfd, 1); err != nil {
			return 1
		}
		cfd, _, err := p.Accept(lfd)
		if err != nil {
			return 1
		}
		in = newMsgReader(p, cfd)
	}
	// Every stage but the last sends downstream.
	out := -1
	if stage < stages {
		fd, err := connectRetry(p, next, uint16(PipeBasePort+stage+1))
		if err != nil {
			return 1
		}
		out = fd
	}

	for i := 0; i < items; i++ {
		var item []byte
		if in != nil {
			data, err := in.read()
			if err != nil {
				return 1
			}
			item = data
		} else {
			item = []byte(fmt.Sprintf("item %03d", i))
		}
		p.Compute(time.Duration(costMs) * time.Millisecond)
		if out >= 0 {
			if err := writeMsg(p, out, item); err != nil {
				return 1
			}
		}
	}
	return 0
}

// RegisterPipeline installs the pipeline stage program.
func RegisterPipeline(s *core.System) error {
	return s.RegisterWorkload("pipestage", PipeStageMain)
}
