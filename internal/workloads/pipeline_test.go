package workloads

import (
	"fmt"
	"testing"
	"time"

	"dpm/internal/analysis"
	"dpm/internal/core"
	"dpm/internal/kernel"
	"dpm/internal/meter"
	"dpm/internal/trace"
)

func TestPipelineBottleneckVisibleInWaitingProfile(t *testing.T) {
	// Three stages on three machines; stage 2 is 5× slower per item.
	// The monitor must reveal the bottleneck: stage 3 spends most of
	// its time blocked waiting for stage 2, while stage 2 hardly waits
	// (stage 1 outruns it). Compute is wall-paced so the stages
	// actually interleave.
	sys, err := core.NewSystem(core.Config{Kernel: kernel.Config{ComputeWallScale: 0.02}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Shutdown)
	s := sys
	if err := RegisterPipeline(s); err != nil {
		t.Fatal(err)
	}
	w := &out{}
	ctl, err := s.NewController("yellow", w)
	if err != nil {
		t.Fatal(err)
	}
	const items = 10
	ctl.Exec("filter f blue")
	ctl.Exec("newjob pipe")
	ctl.Exec("setflags pipe send receivecall receive termproc")
	// Add downstream first so listeners exist early (connectRetry
	// covers the race regardless).
	ctl.Exec(fmt.Sprintf("addprocess pipe blue pipestage 3 3 - %d 2", items))
	ctl.Exec(fmt.Sprintf("addprocess pipe green pipestage 2 3 blue %d 10", items))
	ctl.Exec(fmt.Sprintf("addprocess pipe red pipestage 1 3 green %d 2", items))
	ctl.Exec("startjob pipe")
	waitJob(t, ctl, "pipe")

	events, err := s.WaitTrace("blue", "f", 10*time.Second, func(evs []trace.Event) bool {
		term := 0
		for _, e := range evs {
			if e.Type == meter.EvTermProc {
				term++
			}
		}
		return term >= 3
	})
	if err != nil {
		t.Fatal(err)
	}

	// Identify the stages by machine id (red=1, green=2, blue=3).
	waits := analysis.WaitingProfile(events)
	var stage2, stage3 *analysis.ProcWaiting
	for k, w := range waits {
		switch k.Machine {
		case 2:
			stage2 = w
		case 3:
			stage3 = w
		}
	}
	if stage2 == nil || stage3 == nil {
		t.Fatalf("profiles missing: %v", waits)
	}
	if stage3.BlockedMillis <= stage2.BlockedMillis {
		t.Fatalf("bottleneck not visible: stage3 blocked %dms, stage2 blocked %dms",
			stage3.BlockedMillis, stage2.BlockedMillis)
	}
	// The slow stage accumulates the most CPU.
	par := analysis.MeasureParallelism(events)
	if par.Processes != 3 {
		t.Fatalf("processes = %d", par.Processes)
	}
	var cpuByMachine [4]int64
	for _, e := range events {
		if e.Machine >= 1 && e.Machine <= 3 && e.ProcTime > cpuByMachine[e.Machine] {
			cpuByMachine[e.Machine] = e.ProcTime
		}
	}
	if !(cpuByMachine[2] > cpuByMachine[1] && cpuByMachine[2] > cpuByMachine[3]) {
		t.Fatalf("stage CPU = %v; stage 2 should dominate", cpuByMachine[1:])
	}
	// Every item flowed end to end.
	st := analysis.Comm(events)
	if st.Sends != 2*items {
		t.Fatalf("sends = %d, want %d", st.Sends, 2*items)
	}
}
