package workloads

import (
	"fmt"
	"io"
	"strings"
	"time"

	"dpm/internal/core"
	"dpm/internal/fsys"
	"dpm/internal/trace"
)

// AppendixBScript is the command sequence of the paper's Appendix B
// example session (rmjob is the appendix's alias for removejob; bye
// for die).
var AppendixBScript = []string{
	"filter f1 blue",
	"newjob foo",
	"addprocess foo red A green",
	"addprocess foo green B",
	"setflags foo send receive fork accept connect",
	"startjob foo",
	"rmjob foo",
	"getlog f1 trace",
	"bye",
}

// RunAppendixBSession replays the Appendix B session on a fresh
// system, writing the transcript to out, and returns the retrieved
// trace file contents. Between startjob and rmjob it waits for the
// job to complete and the trace to land, as the appendix's user did by
// watching the DONE notices.
func RunAppendixBSession(out io.Writer) (string, error) {
	sys, err := core.NewSystem(core.Config{})
	if err != nil {
		return "", err
	}
	defer sys.Shutdown()
	sys.Cluster.RegisterProgram("progA", PingerMain)
	sys.Cluster.RegisterProgram("progB", PongerMain)
	for _, mn := range []string{"red", "green"} {
		m, err := sys.Machine(mn)
		if err != nil {
			return "", err
		}
		if err := m.FS().CreateExecutable("/bin/A", sys.UID, "progA"); err != nil {
			return "", err
		}
		if err := m.FS().CreateExecutable("/bin/B", sys.UID, "progB"); err != nil {
			return "", err
		}
	}
	ctl, err := sys.NewController("yellow", out)
	if err != nil {
		return "", err
	}
	for _, cmd := range AppendixBScript {
		if strings.HasPrefix(cmd, "rmjob") {
			if err := core.WaitJob(ctl, "foo", time.Minute); err != nil {
				return "", err
			}
			if _, err := sys.WaitTrace("blue", "f1", 10*time.Second, func(evs []trace.Event) bool {
				return len(evs) >= 4
			}); err != nil {
				return "", err
			}
		}
		fmt.Fprintf(out, "<Control> %s\n", cmd)
		ctl.Exec(cmd)
	}
	yellow, err := sys.Machine("yellow")
	if err != nil {
		return "", err
	}
	data, err := yellow.FS().Read("/usr/trace", fsys.Superuser)
	if err != nil {
		return "", err
	}
	return string(data), nil
}
