package workloads

import (
	"regexp"
	"strings"
	"testing"
)

func TestRunAppendixBSession(t *testing.T) {
	w := &out{}
	traceData, err := RunAppendixBSession(w)
	if err != nil {
		t.Fatal(err)
	}
	transcript := w.String()
	for _, pat := range []string{
		`<Control> filter f1 blue`,
		`filter 'f1' \.\.\. created: identifier = \d+`,
		`<Control> newjob foo`,
		`process 'A' \.\.\. created`,
		`process 'B' \.\.\. created`,
		`new job flags = fork send receive accept connect`,
		`'A' started\.`,
		`DONE: process A in job 'foo' terminated: reason: normal`,
		`'B' removed`,
		`<Control> bye`,
	} {
		if !regexp.MustCompile(pat).MatchString(transcript) {
			t.Errorf("transcript lacks %q:\n%s", pat, transcript)
		}
	}
	// The retrieved trace holds the session's communication events.
	for _, ev := range []string{"CONNECT", "ACCEPT", "SEND", "RECEIVE"} {
		if !strings.Contains(traceData, ev+" ") {
			t.Errorf("trace lacks %s:\n%s", ev, traceData)
		}
	}
	// Only the flagged events appear.
	if strings.Contains(traceData, "SOCKET ") || strings.Contains(traceData, "TERMPROC ") {
		t.Errorf("unflagged events in trace:\n%s", traceData)
	}
}
