package workloads

import (
	"fmt"
	"time"

	"dpm/internal/core"
	"dpm/internal/kernel"
	"dpm/internal/meter"
)

// StormPort is the catcher's well-known port.
const StormPort = 7600

// BlasterMain fires datagrams at a catcher without acknowledgement —
// exactly the traffic whose delivery "is not guaranteed, though it is
// likely" (section 3.1). args: catcher machine, datagram count.
func BlasterMain(p *kernel.Process) int {
	args := p.Args()
	dest := "green"
	if len(args) > 0 && args[0] != "" {
		dest = args[0]
	}
	count := argInt(args, 1, 50)
	hostID, _, err := p.Machine().Cluster().ResolveFrom(p.Machine(), dest)
	if err != nil {
		return 1
	}
	name := meter.InetName(hostID, StormPort)
	fd, err := p.Socket(meter.AFInet, kernel.SockDgram)
	if err != nil {
		return 1
	}
	if err := p.BindPort(fd, 0); err != nil {
		return 1
	}
	for i := 0; i < count; i++ {
		p.Compute(time.Millisecond)
		if _, err := p.SendTo(fd, []byte(fmt.Sprintf("dgram %04d", i)), name); err != nil {
			return 1
		}
	}
	return 0
}

// CatcherMain receives datagrams until it is killed (the controller
// stops and removes it once the blaster is done).
func CatcherMain(p *kernel.Process) int {
	fd, err := p.Socket(meter.AFInet, kernel.SockDgram)
	if err != nil {
		return 1
	}
	if err := p.BindPort(fd, StormPort); err != nil {
		return 1
	}
	for {
		if _, _, err := p.RecvFrom(fd, 4096); err != nil {
			return 0
		}
	}
}

// RegisterStorm installs the blaster and catcher programs.
func RegisterStorm(s *core.System) error {
	if err := s.RegisterWorkload("blaster", BlasterMain); err != nil {
		return err
	}
	return s.RegisterWorkload("catcher", CatcherMain)
}
