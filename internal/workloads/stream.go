// Package workloads provides the distributed computations the
// examples and benchmarks run under the monitor: a stream ping-pong
// pair, a datagram echo server, and the distributed traveling-salesman
// computation the paper cites as the tool's first real use (Lai &
// Miller 84, referenced in section 5).
package workloads

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"dpm/internal/core"
	"dpm/internal/kernel"
	"dpm/internal/meter"
)

// ErrConnectTimeout marks a connectRetry that exhausted its budget.
// The last connect failure is wrapped alongside it, so callers can
// errors.Is against both the timeout and the underlying cause.
var ErrConnectTimeout = errors.New("workloads: connect retries exhausted")

// connectBudget bounds how long connectRetry keeps dialing; a variable
// so tests can shrink it.
var connectBudget = 10 * time.Second

// connectRetry dials (host, port), retrying with exponential backoff
// plus jitter while the server is still coming up (or the fabric is
// misbehaving). It returns the connected descriptor, or an error
// wrapping ErrConnectTimeout and the last failure once the budget is
// spent.
func connectRetry(p *kernel.Process, host string, port uint16) (int, error) {
	hostID, _, err := p.Machine().Cluster().ResolveFrom(p.Machine(), host)
	if err != nil {
		return -1, err
	}
	name := meter.InetName(hostID, port)
	const (
		baseDelay = time.Millisecond
		maxDelay  = 100 * time.Millisecond
	)
	deadline := time.Now().Add(connectBudget)
	delay := baseDelay
	var lastErr error
	for {
		fd, err := p.Socket(meter.AFInet, kernel.SockStream)
		if err != nil {
			return -1, err
		}
		err = p.Connect(fd, name)
		if err == nil {
			return fd, nil
		}
		lastErr = err
		_ = p.Close(fd)
		if time.Now().After(deadline) {
			return -1, fmt.Errorf("%w: %s:%d after %v: %w",
				ErrConnectTimeout, host, port, connectBudget, lastErr)
		}
		time.Sleep(delay + time.Duration(rand.Int63n(int64(delay))))
		if delay *= 2; delay > maxDelay {
			delay = maxDelay
		}
	}
}

// writeMsg sends one length-prefixed message on a stream socket.
func writeMsg(p *kernel.Process, fd int, payload []byte) error {
	hdr := binary.LittleEndian.AppendUint32(nil, uint32(len(payload)))
	if _, err := p.Send(fd, append(hdr, payload...)); err != nil {
		return err
	}
	return nil
}

// msgReader reads length-prefixed messages from one stream socket,
// carrying coalesced bytes across reads (streams concatenate
// messages, section 3.1).
type msgReader struct {
	p   *kernel.Process
	fd  int
	buf []byte
}

func newMsgReader(p *kernel.Process, fd int) *msgReader {
	return &msgReader{p: p, fd: fd}
}

// read returns the next complete message.
func (r *msgReader) read() ([]byte, error) {
	for {
		if len(r.buf) >= 4 {
			need := int(binary.LittleEndian.Uint32(r.buf[:4]))
			if len(r.buf) >= 4+need {
				msg := append([]byte(nil), r.buf[4:4+need]...)
				r.buf = r.buf[4+need:]
				return msg, nil
			}
		}
		data, err := r.p.Recv(r.fd, 8192)
		if err != nil {
			return nil, err
		}
		r.buf = append(r.buf, data...)
	}
}

// PingPongPort is the ponger's well-known port.
const PingPongPort = 7000

// RegisterPingPong installs "pinger" and "ponger" on every machine of
// the system. The ponger accepts one connection, reads a message,
// computes for a while, and replies; the pinger (args: server machine,
// optional round count) drives it.
func RegisterPingPong(s *core.System) error {
	if err := s.RegisterWorkload("ponger", PongerMain); err != nil {
		return err
	}
	return s.RegisterWorkload("pinger", PingerMain)
}

// PongerMain is the server half of the ping-pong computation. args:
// optional round count.
func PongerMain(p *kernel.Process) int {
	rounds := argInt(p.Args(), 0, 1)
	lfd, err := p.Socket(meter.AFInet, kernel.SockStream)
	if err != nil {
		return 1
	}
	if err := p.BindPort(lfd, PingPongPort); err != nil {
		return 1
	}
	if err := p.Listen(lfd, 4); err != nil {
		return 1
	}
	cfd, _, err := p.Accept(lfd)
	if err != nil {
		return 1
	}
	r := newMsgReader(p, cfd)
	for i := 0; i < rounds; i++ {
		data, err := r.read()
		if err != nil {
			return 1
		}
		p.Compute(5 * time.Millisecond)
		if err := writeMsg(p, cfd, append([]byte("re: "), data...)); err != nil {
			return 1
		}
	}
	return 0
}

// PingerMain is the client half. args: server machine, optional round
// count.
func PingerMain(p *kernel.Process) int {
	args := p.Args()
	server := "green"
	if len(args) > 0 && args[0] != "" {
		server = args[0]
	}
	rounds := argInt(args, 1, 1)
	fd, err := connectRetry(p, server, PingPongPort)
	if err != nil {
		return 1
	}
	r := newMsgReader(p, fd)
	for i := 0; i < rounds; i++ {
		p.Compute(5 * time.Millisecond)
		if err := writeMsg(p, fd, []byte(fmt.Sprintf("ping %d", i))); err != nil {
			return 1
		}
		if _, err := r.read(); err != nil {
			return 1
		}
	}
	return 0
}

func argInt(args []string, idx, def int) int {
	if idx >= len(args) {
		return def
	}
	var v int
	if _, err := fmt.Sscanf(args[idx], "%d", &v); err != nil || v < 1 {
		return def
	}
	return v
}

// EchoPort is the datagram echo server's well-known port.
const EchoPort = 7500

// EchoServerMain is a long-running datagram echo server — the kind of
// "system server" the acquire command exists for (section 4.3). It
// echoes every datagram back to its source and exits on "quit".
func EchoServerMain(p *kernel.Process) int {
	fd, err := p.Socket(meter.AFInet, kernel.SockDgram)
	if err != nil {
		return 1
	}
	if err := p.BindPort(fd, EchoPort); err != nil {
		return 1
	}
	for {
		data, src, err := p.RecvFrom(fd, 4096)
		if err != nil {
			return 0
		}
		if string(data) == "quit" {
			return 0
		}
		p.Compute(time.Millisecond)
		if _, err := p.SendTo(fd, data, src); err != nil {
			return 1
		}
	}
}

// EchoClientMain sends datagrams to an echo server and awaits the
// echoes. args: server machine, message count.
func EchoClientMain(p *kernel.Process) int {
	args := p.Args()
	server := "red"
	if len(args) > 0 && args[0] != "" {
		server = args[0]
	}
	count := argInt(args, 1, 5)
	hostID, _, err := p.Machine().Cluster().ResolveFrom(p.Machine(), server)
	if err != nil {
		return 1
	}
	dest := meter.InetName(hostID, EchoPort)
	fd, err := p.Socket(meter.AFInet, kernel.SockDgram)
	if err != nil {
		return 1
	}
	if err := p.BindPort(fd, 0); err != nil {
		return 1
	}
	for i := 0; i < count; i++ {
		msg := []byte(fmt.Sprintf("echo %d", i))
		if _, err := p.SendTo(fd, msg, dest); err != nil {
			return 1
		}
		if _, err := p.Recv(fd, 4096); err != nil {
			return 1
		}
	}
	return 0
}

// RegisterEcho installs the echo server and client programs.
func RegisterEcho(s *core.System) error {
	if err := s.RegisterWorkload("echoserver", EchoServerMain); err != nil {
		return err
	}
	return s.RegisterWorkload("echoclient", EchoClientMain)
}
