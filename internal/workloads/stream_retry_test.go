package workloads

import (
	"errors"
	"testing"
	"time"

	"dpm/internal/core"
	"dpm/internal/kernel"
	"dpm/internal/meter"
)

// TestConnectRetryDeadline checks the bounded-retry contract: dialing
// a port nobody listens on gives up within the budget and returns an
// error that wraps both ErrConnectTimeout and the underlying connect
// failure.
func TestConnectRetryDeadline(t *testing.T) {
	s, err := core.NewSystem(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Shutdown)
	m, err := s.Machine("red")
	if err != nil {
		t.Fatal(err)
	}
	p, err := m.SpawnDetached(s.UID, "dialer")
	if err != nil {
		t.Fatal(err)
	}

	old := connectBudget
	connectBudget = 30 * time.Millisecond
	defer func() { connectBudget = old }()

	start := time.Now()
	_, err = connectRetry(p, "green", 9999) // nobody listens there
	elapsed := time.Since(start)
	if !errors.Is(err, ErrConnectTimeout) {
		t.Fatalf("err = %v, want wrapped ErrConnectTimeout", err)
	}
	if !errors.Is(err, kernel.ErrConnRefused) {
		t.Fatalf("err = %v, want the last connect failure wrapped too", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("gave up after %v — budget not honored", elapsed)
	}
}

// TestConnectRetryEventualSuccess: the listener comes up late and the
// backoff still finds it.
func TestConnectRetryEventualSuccess(t *testing.T) {
	s, err := core.NewSystem(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Shutdown)
	red, err := s.Machine("red")
	if err != nil {
		t.Fatal(err)
	}
	green, err := s.Machine("green")
	if err != nil {
		t.Fatal(err)
	}
	p, err := red.SpawnDetached(s.UID, "dialer")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := green.SpawnDetached(s.UID, "late-listener")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(20 * time.Millisecond)
		lfd, err := srv.Socket(meter.AFInet, kernel.SockStream)
		if err != nil {
			return
		}
		if err := srv.BindPort(lfd, 9876); err != nil {
			return
		}
		_ = srv.Listen(lfd, 4)
	}()
	fd, err := connectRetry(p, "green", 9876)
	if err != nil {
		t.Fatalf("connectRetry never found the late listener: %v", err)
	}
	if fd < 0 {
		t.Fatalf("fd = %d", fd)
	}
}
