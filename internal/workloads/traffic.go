package workloads

import (
	"encoding/binary"
	"errors"
	"math"
	"sync/atomic"
	"time"

	"dpm/internal/core"
	"dpm/internal/kernel"
	"dpm/internal/meter"
)

// This file is the traffic-shape generator for cluster-scale
// simulations: shaped datagram sources and sinks built as kernel
// *tasks* (event-driven, no goroutine per process), plus a small
// fan-out/fan-in microservice call tree registered as ordinary
// workload programs. The scale soak and the fabric benchmarks drive
// thousands of these against the monitor's filters; a laptop-sized
// host only survives that because each source is a struct on the
// scheduler's wheel, not a goroutine in a sleep loop.

// Shape maps elapsed run time to an offered load in datagrams/second.
// Implementations must be safe for concurrent use (one Shape is
// typically shared by every source on a machine class).
type Shape interface {
	Rate(elapsed time.Duration) float64
}

// Steady offers a constant rate.
type Steady struct {
	PerSec float64
}

func (s Steady) Rate(time.Duration) float64 { return s.PerSec }

// Diurnal sweeps sinusoidally between Base and Peak over Period — the
// compressed day/night load curve of a long-running service.
type Diurnal struct {
	Base, Peak float64
	Period     time.Duration
}

func (d Diurnal) Rate(elapsed time.Duration) float64 {
	if d.Period <= 0 {
		return d.Base
	}
	phase := float64(elapsed%d.Period) / float64(d.Period)
	return d.Base + (d.Peak-d.Base)*0.5*(1-math.Cos(2*math.Pi*phase))
}

// Bursts offers Base load with storms of BurstRate lasting Length at
// the start of every Every interval — retry stampedes and cron storms.
type Bursts struct {
	Base, BurstRate float64
	Every, Length   time.Duration
}

func (b Bursts) Rate(elapsed time.Duration) float64 {
	if b.Every <= 0 {
		return b.Base
	}
	if elapsed%b.Every < b.Length {
		return b.BurstRate
	}
	return b.Base
}

// TrafficStats is the shared scoreboard a fleet of sources and sinks
// reports into.
type TrafficStats struct {
	Sent     atomic.Int64
	Received atomic.Int64
}

// NewTrafficTask returns a kernel.TaskFunc that sends shaped datagram
// traffic to dest until its process is killed. Payloads carry a
// sequence number so a sink can spot them; sends that fail because the
// fabric is congested or partitioned are ordinary datagram loss and do
// not stop the source.
func NewTrafficTask(shape Shape, dest meter.Name, payload int, stats *TrafficStats) kernel.TaskFunc {
	if payload < 8 {
		payload = 8
	}
	var (
		fd    int
		ready bool
		start time.Time
		seq   uint64
		buf   = make([]byte, payload)
	)
	return func(t *kernel.Task) kernel.Poll {
		p := t.Proc()
		if !ready {
			var err error
			if fd, err = p.Socket(meter.AFInet, kernel.SockDgram); err != nil {
				return kernel.PollDone
			}
			if err := p.BindPort(fd, 0); err != nil {
				return kernel.PollDone
			}
			start = time.Now()
			ready = true
		}
		rate := shape.Rate(time.Since(start))
		if rate <= 0 {
			return t.Sleep(100 * time.Millisecond)
		}
		binary.BigEndian.PutUint64(buf, seq)
		seq++
		if _, err := p.SendTo(fd, buf, dest); err != nil {
			if errors.Is(err, kernel.ErrKilled) || errors.Is(err, kernel.ErrExited) {
				return kernel.PollDone
			}
			// Unreachable destination or downed interface: back off and
			// let the fault heal.
			return t.Sleep(50 * time.Millisecond)
		}
		if stats != nil {
			stats.Sent.Add(1)
		}
		return t.Sleep(time.Duration(float64(time.Second) / rate))
	}
}

// NewSinkTask returns a kernel.TaskFunc that binds port and counts
// every datagram delivered to it, parking between arrivals.
func NewSinkTask(port uint16, stats *TrafficStats) kernel.TaskFunc {
	var (
		fd    int
		ready bool
	)
	return func(t *kernel.Task) kernel.Poll {
		p := t.Proc()
		if !ready {
			var err error
			if fd, err = p.Socket(meter.AFInet, kernel.SockDgram); err != nil {
				return kernel.PollDone
			}
			if err := p.BindPort(fd, port); err != nil {
				return kernel.PollDone
			}
			ready = true
		}
		for {
			_, _, err := p.TryRecvFrom(fd, 4096)
			switch {
			case err == nil:
				if stats != nil {
					stats.Received.Add(1)
				}
			case errors.Is(err, kernel.ErrWouldBlock):
				return t.Park(fd)
			default:
				return kernel.PollDone
			}
		}
	}
}

// Fan-out/fan-in microservice call tree: a frontend that scatters one
// request to a tier of backends and gathers every reply before
// answering — the traffic skeleton of section 3's distributed
// programs, where one logical operation crosses several machines.

// FanPort is the backend tier's well-known port.
const FanPort = 7700

// BackendMain answers each request datagram with a reply to its
// source, until killed. args: optional port override.
func BackendMain(p *kernel.Process) int {
	port := uint16(argInt(p.Args(), 0, FanPort))
	fd, err := p.Socket(meter.AFInet, kernel.SockDgram)
	if err != nil {
		return 1
	}
	if err := p.BindPort(fd, port); err != nil {
		return 1
	}
	for {
		data, src, err := p.RecvFrom(fd, 4096)
		if err != nil {
			return 0
		}
		p.Compute(time.Millisecond) // the "service work"
		if _, err := p.SendTo(fd, data, src); err != nil {
			return 0
		}
	}
}

// FrontendMain fans one request out to every backend machine named in
// its arguments and waits for all replies (fan-in), repeating for the
// round count in the last argument. Exit status is the number of
// rounds that timed out short of a full reply set.
func FrontendMain(p *kernel.Process) int {
	args := p.Args()
	if len(args) < 2 {
		return 1
	}
	backends := args[:len(args)-1]
	rounds := argInt(args, len(args)-1, 5)
	cluster := p.Machine().Cluster()
	dests := make([]meter.Name, 0, len(backends))
	for _, b := range backends {
		hostID, _, err := cluster.ResolveFrom(p.Machine(), b)
		if err != nil {
			return 1
		}
		dests = append(dests, meter.InetName(hostID, FanPort))
	}
	fd, err := p.Socket(meter.AFInet, kernel.SockDgram)
	if err != nil {
		return 1
	}
	if err := p.BindPort(fd, 0); err != nil {
		return 1
	}
	short := 0
	req := make([]byte, 8)
	for r := 0; r < rounds; r++ {
		binary.BigEndian.PutUint64(req, uint64(r))
		for _, d := range dests {
			if _, err := p.SendTo(fd, req, d); err != nil {
				return 1
			}
		}
		// Fan-in: gather one reply per backend; datagrams are lossy, so
		// a timeout ends the round rather than the program.
		for got := 0; got < len(dests); got++ {
			if _, _, err := p.RecvTimeout(fd, 4096, 2*time.Second); err != nil {
				short++
				break
			}
		}
	}
	return short
}

// RegisterTraffic installs the fan-out/fan-in call-tree programs.
func RegisterTraffic(s *core.System) error {
	if err := s.RegisterWorkload("fan-backend", BackendMain); err != nil {
		return err
	}
	return s.RegisterWorkload("fan-frontend", FrontendMain)
}
