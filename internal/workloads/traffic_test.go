package workloads

import (
	"math"
	"testing"
	"time"

	"dpm/internal/kernel"
	"dpm/internal/meter"
)

func TestShapeRates(t *testing.T) {
	d := Diurnal{Base: 10, Peak: 110, Period: time.Minute}
	if r := d.Rate(0); math.Abs(r-10) > 0.01 {
		t.Fatalf("diurnal trough = %v, want 10", r)
	}
	if r := d.Rate(30 * time.Second); math.Abs(r-110) > 0.01 {
		t.Fatalf("diurnal peak = %v, want 110", r)
	}
	if r := d.Rate(15 * time.Second); math.Abs(r-60) > 0.01 {
		t.Fatalf("diurnal midpoint = %v, want 60", r)
	}
	if r := (Diurnal{Base: 5}).Rate(time.Hour); r != 5 {
		t.Fatalf("zero-period diurnal = %v, want base", r)
	}

	b := Bursts{Base: 2, BurstRate: 500, Every: 10 * time.Second, Length: time.Second}
	if r := b.Rate(10*time.Second + 500*time.Millisecond); r != 500 {
		t.Fatalf("inside burst = %v, want 500", r)
	}
	if r := b.Rate(5 * time.Second); r != 2 {
		t.Fatalf("between bursts = %v, want 2", r)
	}
	if r := (Steady{PerSec: 7}).Rate(time.Hour); r != 7 {
		t.Fatalf("steady = %v, want 7", r)
	}
}

// TestTrafficSourceToSink runs a shaped source task on one machine
// against a sink task on another: cross-machine datagrams, no
// goroutines per process, counts on both ends.
func TestTrafficSourceToSink(t *testing.T) {
	c := kernel.NewCluster(kernel.Config{})
	c.AddNetwork("ether0")
	src, err := c.AddMachine("src", nil, "ether0")
	if err != nil {
		t.Fatal(err)
	}
	dst, err := c.AddMachine("dst", nil, "ether0")
	if err != nil {
		t.Fatal(err)
	}
	src.AddAccount(100, "user")
	dst.AddAccount(100, "user")
	t.Cleanup(c.Shutdown)

	stats := &TrafficStats{}
	if _, err := dst.SpawnTask(100, "sink", NewSinkTask(7100, stats)); err != nil {
		t.Fatal(err)
	}
	dest := meter.InetName(dst.PrimaryHostID(), 7100)
	gen, err := src.SpawnTask(100, "gen", NewTrafficTask(Steady{PerSec: 500}, dest, 64, stats))
	if err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(10 * time.Second)
	for stats.Received.Load() < 20 {
		if time.Now().After(deadline) {
			t.Fatalf("sink received %d datagrams (sent %d), want >= 20",
				stats.Received.Load(), stats.Sent.Load())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := src.Signal(gen.PID(), kernel.SIGKILL); err != nil {
		t.Fatal(err)
	}
	if sent := stats.Sent.Load(); sent < 20 {
		t.Fatalf("source sent %d, want >= 20", sent)
	}
}

// TestFanOutFanIn runs the microservice call tree through the full
// system: a frontend on red scatters to backends on green and blue and
// gathers every reply, with the computation metered through a filter.
func TestFanOutFanIn(t *testing.T) {
	s, ctl, _ := newSys(t)
	if err := RegisterTraffic(s); err != nil {
		t.Fatal(err)
	}
	ctl.Exec("filter f blue")
	ctl.Exec("newjob fan")
	ctl.Exec("setflags fan send receive termproc")
	ctl.Exec("addprocess fan green fan-backend")
	ctl.Exec("addprocess fan blue fan-backend")
	ctl.Exec("startjob fan")

	// Datagrams to an unbound port are silently dropped; wait for the
	// backends before the first scatter so round 0 is answerable.
	for _, name := range []string{"green", "blue"} {
		bm, err := s.Cluster.Machine(name)
		if err != nil {
			t.Fatal(err)
		}
		deadline := time.Now().Add(5 * time.Second)
		for !bm.PortBound(kernel.SockDgram, FanPort) {
			if time.Now().After(deadline) {
				t.Fatalf("backend on %s never bound port %d", name, FanPort)
			}
			time.Sleep(time.Millisecond)
		}
	}

	m, err := s.Cluster.Machine("red")
	if err != nil {
		t.Fatal(err)
	}
	p, err := m.Spawn(kernel.SpawnSpec{
		UID: 100, Name: "fan-frontend", Program: FrontendMain,
		Args: []string{"green", "blue", "4"},
	})
	if err != nil {
		t.Fatal(err)
	}
	status, reason := p.WaitExit()
	if status != 0 || reason != kernel.ReasonNormal {
		t.Fatalf("frontend exit = (%d, %s): %d rounds short of a full reply set",
			status, reason, status)
	}
}
