package workloads

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"
	"time"

	"dpm/internal/core"
	"dpm/internal/kernel"
	"dpm/internal/meter"
)

// This file implements the distributed traveling-salesman computation
// the paper reports as the tool's initial experience: "A multiprocess
// computation was developed and debugged using the tool, which led to
// substantial modifications of the program resulting in substantial
// improvements of its performance" (section 5, citing Lai & Miller
// 84). A master process distributes first-level branches of the
// branch-and-bound search to worker processes on other machines over
// stream connections.

// TSPPort is the master's well-known port.
const TSPPort = 7100

// TSPInstance is a symmetric TSP instance with integer distances.
type TSPInstance struct {
	N    int
	Dist [][]int
}

// NewTSPInstance generates a random Euclidean instance from a seed.
func NewTSPInstance(n int, seed int64) *TSPInstance {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]int, n)
	ys := make([]int, n)
	for i := range xs {
		xs[i] = rng.Intn(1000)
		ys[i] = rng.Intn(1000)
	}
	d := make([][]int, n)
	for i := range d {
		d[i] = make([]int, n)
		for j := range d[i] {
			dx, dy := float64(xs[i]-xs[j]), float64(ys[i]-ys[j])
			d[i][j] = int(math.Sqrt(dx*dx + dy*dy))
		}
	}
	return &TSPInstance{N: n, Dist: d}
}

// TourCost returns the cost of a complete tour (returning to the
// start); it panics on malformed tours, which only tests construct.
func (t *TSPInstance) TourCost(tour []int) int {
	cost := 0
	for i := 0; i < len(tour); i++ {
		cost += t.Dist[tour[i]][tour[(i+1)%len(tour)]]
	}
	return cost
}

// NoTour is the cost reported when no tour under the bound exists.
const NoTour = math.MaxInt32

// BranchAndBound finds the best tour extending prefix with cost
// strictly under bound. It returns the best cost (NoTour if none),
// the tour, and the number of search nodes explored.
func BranchAndBound(t *TSPInstance, prefix []int, bound int) (int, []int, int) {
	visited := make([]bool, t.N)
	cost := 0
	for i, c := range prefix {
		visited[c] = true
		if i > 0 {
			cost += t.Dist[prefix[i-1]][c]
		}
	}
	best := bound
	var bestTour []int
	nodes := 0
	cur := append([]int(nil), prefix...)
	var dfs func(last, cost int)
	dfs = func(last, cost int) {
		nodes++
		if cost >= best {
			return
		}
		if len(cur) == t.N {
			total := cost + t.Dist[last][cur[0]]
			if total < best {
				best = total
				bestTour = append([]int(nil), cur...)
			}
			return
		}
		for next := 0; next < t.N; next++ {
			if visited[next] {
				continue
			}
			visited[next] = true
			cur = append(cur, next)
			dfs(next, cost+t.Dist[last][next])
			cur = cur[:len(cur)-1]
			visited[next] = false
		}
	}
	dfs(prefix[len(prefix)-1], cost)
	if bestTour == nil {
		return NoTour, nil, nodes
	}
	return best, bestTour, nodes
}

// SolveSequential solves the whole instance on one process, the
// baseline against which the distributed version's parallelism is
// measured.
func SolveSequential(t *TSPInstance) (int, []int, int) {
	return BranchAndBound(t, []int{0}, NoTour)
}

// Wire encoding helpers: the master ships the distance matrix once,
// then branch assignments; workers reply with results.

func encodeMatrix(t *TSPInstance) []byte {
	parts := []string{"matrix", strconv.Itoa(t.N)}
	for _, row := range t.Dist {
		for _, v := range row {
			parts = append(parts, strconv.Itoa(v))
		}
	}
	return []byte(strings.Join(parts, " "))
}

func decodeMatrix(data []byte) (*TSPInstance, error) {
	parts := strings.Fields(string(data))
	if len(parts) < 2 || parts[0] != "matrix" {
		return nil, fmt.Errorf("workloads: bad matrix message")
	}
	n, err := strconv.Atoi(parts[1])
	if err != nil || len(parts) != 2+n*n {
		return nil, fmt.Errorf("workloads: bad matrix size")
	}
	t := &TSPInstance{N: n, Dist: make([][]int, n)}
	idx := 2
	for i := 0; i < n; i++ {
		t.Dist[i] = make([]int, n)
		for j := 0; j < n; j++ {
			t.Dist[i][j], err = strconv.Atoi(parts[idx])
			if err != nil {
				return nil, fmt.Errorf("workloads: bad distance")
			}
			idx++
		}
	}
	return t, nil
}

// TSPMasterMain coordinates the computation. args: nCities, nWorkers,
// seed. It prints the best tour to standard output (which the daemon
// gateway forwards to the controller).
func TSPMasterMain(p *kernel.Process) int {
	args := p.Args()
	n := argInt(args, 0, 10)
	workers := argInt(args, 1, 2)
	seed := int64(argInt(args, 2, 1))
	inst := NewTSPInstance(n, seed)

	lfd, err := p.Socket(meter.AFInet, kernel.SockStream)
	if err != nil {
		return 1
	}
	if err := p.BindPort(lfd, TSPPort); err != nil {
		return 1
	}
	if err := p.Listen(lfd, workers); err != nil {
		return 1
	}
	conns := make([]int, 0, workers)
	readers := make(map[int]*msgReader, workers)
	for len(conns) < workers {
		fd, _, err := p.Accept(lfd)
		if err != nil {
			return 1
		}
		if err := writeMsg(p, fd, encodeMatrix(inst)); err != nil {
			return 1
		}
		conns = append(conns, fd)
		readers[fd] = newMsgReader(p, fd)
	}

	// Work queue: one branch per choice of second city.
	pending := make([]int, 0, n-1)
	for j := 1; j < n; j++ {
		pending = append(pending, j)
	}
	best := NoTour
	var bestTour []int
	busy := make(map[int]bool) // conn fd -> has outstanding work
	outstanding := 0
	assign := func(fd int) bool {
		if len(pending) == 0 {
			return false
		}
		j := pending[0]
		pending = pending[1:]
		if err := writeMsg(p, fd, []byte(fmt.Sprintf("branch %d %d", j, best))); err != nil {
			return false
		}
		busy[fd] = true
		outstanding++
		return true
	}
	for _, fd := range conns {
		assign(fd)
	}
	for outstanding > 0 {
		ready, err := p.Select(conns)
		if err != nil {
			return 1
		}
		for _, fd := range ready {
			if !busy[fd] {
				continue
			}
			data, err := readers[fd].read()
			if err != nil {
				return 1
			}
			busy[fd] = false
			outstanding--
			var j, cost int
			fields := strings.Fields(string(data))
			if len(fields) < 3 || fields[0] != "result" {
				return 1
			}
			j, _ = strconv.Atoi(fields[1])
			cost, _ = strconv.Atoi(fields[2])
			_ = j
			if cost < best {
				best = cost
				bestTour = nil
				for _, f := range fields[3:] {
					c, _ := strconv.Atoi(f)
					bestTour = append(bestTour, c)
				}
			}
			assign(fd)
		}
	}
	for _, fd := range conns {
		if err := writeMsg(p, fd, []byte("quit")); err != nil {
			return 1
		}
	}
	p.Printf("tsp best cost=%d tour=%v\n", best, bestTour)
	if best == NoTour {
		return 1
	}
	return 0
}

// TSPWorkerMain solves assigned branches. args: master machine.
func TSPWorkerMain(p *kernel.Process) int {
	args := p.Args()
	master := "red"
	if len(args) > 0 && args[0] != "" {
		master = args[0]
	}
	fd, err := connectRetry(p, master, TSPPort)
	if err != nil {
		return 1
	}
	r := newMsgReader(p, fd)
	data, err := r.read()
	if err != nil {
		return 1
	}
	inst, err := decodeMatrix(data)
	if err != nil {
		return 1
	}
	for {
		msg, err := r.read()
		if err != nil {
			return 1
		}
		fields := strings.Fields(string(msg))
		switch fields[0] {
		case "quit":
			return 0
		case "branch":
			if len(fields) != 3 {
				return 1
			}
			j, _ := strconv.Atoi(fields[1])
			bound, _ := strconv.Atoi(fields[2])
			cost, tour, nodes := BranchAndBound(inst, []int{0, j}, bound)
			// Model the search's CPU consumption so the parallelism
			// analysis sees real work.
			p.Compute(time.Duration(nodes) * time.Microsecond)
			reply := []string{"result", strconv.Itoa(j), strconv.Itoa(cost)}
			for _, c := range tour {
				reply = append(reply, strconv.Itoa(c))
			}
			if err := writeMsg(p, fd, []byte(strings.Join(reply, " "))); err != nil {
				return 1
			}
		default:
			return 1
		}
	}
}

// RegisterTSP installs the master and worker programs on every
// machine.
func RegisterTSP(s *core.System) error {
	if err := s.RegisterWorkload("tspmaster", TSPMasterMain); err != nil {
		return err
	}
	return s.RegisterWorkload("tspworker", TSPWorkerMain)
}
