package workloads

import (
	"reflect"
	"testing"
)

// permutations enumerates tours for the brute-force reference.
func permute(cities []int, f func([]int)) {
	var rec func(k int)
	rec = func(k int) {
		if k == len(cities) {
			f(cities)
			return
		}
		for i := k; i < len(cities); i++ {
			cities[k], cities[i] = cities[i], cities[k]
			rec(k + 1)
			cities[k], cities[i] = cities[i], cities[k]
		}
	}
	rec(0)
}

func bruteForce(t *TSPInstance) (int, []int) {
	rest := make([]int, 0, t.N-1)
	for c := 1; c < t.N; c++ {
		rest = append(rest, c)
	}
	best := NoTour
	var bestTour []int
	permute(rest, func(p []int) {
		tour := append([]int{0}, p...)
		if c := t.TourCost(tour); c < best {
			best = c
			bestTour = append([]int(nil), tour...)
		}
	})
	return best, bestTour
}

func TestBranchAndBoundMatchesBruteForce(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		inst := NewTSPInstance(8, seed)
		wantCost, _ := bruteForce(inst)
		gotCost, gotTour, nodes := SolveSequential(inst)
		if gotCost != wantCost {
			t.Fatalf("seed %d: cost %d, want %d", seed, gotCost, wantCost)
		}
		if c := inst.TourCost(gotTour); c != gotCost {
			t.Fatalf("seed %d: reported cost %d but tour costs %d", seed, gotCost, c)
		}
		if nodes <= 0 {
			t.Fatalf("seed %d: nodes = %d", seed, nodes)
		}
	}
}

func TestBranchAndBoundRespectsBound(t *testing.T) {
	inst := NewTSPInstance(8, 3)
	optimal, _, _ := SolveSequential(inst)
	// A bound at the optimum: no tour strictly better exists.
	cost, tour, _ := BranchAndBound(inst, []int{0}, optimal)
	if cost != NoTour || tour != nil {
		t.Fatalf("bound=optimal returned cost %d", cost)
	}
	// A bound above the optimum finds it.
	cost, _, _ = BranchAndBound(inst, []int{0}, optimal+1)
	if cost != optimal {
		t.Fatalf("bound=optimal+1 returned %d, want %d", cost, optimal)
	}
}

func TestBranchesCoverSearchSpace(t *testing.T) {
	// The master's decomposition: best over all second-city branches
	// equals the sequential optimum.
	inst := NewTSPInstance(9, 7)
	optimal, _, _ := SolveSequential(inst)
	best := NoTour
	for j := 1; j < inst.N; j++ {
		if c, _, _ := BranchAndBound(inst, []int{0, j}, best); c < best {
			best = c
		}
	}
	if best != optimal {
		t.Fatalf("branched best %d != sequential %d", best, optimal)
	}
}

func TestInstanceDeterministic(t *testing.T) {
	a, b := NewTSPInstance(10, 42), NewTSPInstance(10, 42)
	if !reflect.DeepEqual(a.Dist, b.Dist) {
		t.Fatal("same seed produced different instances")
	}
	c := NewTSPInstance(10, 43)
	if reflect.DeepEqual(a.Dist, c.Dist) {
		t.Fatal("different seeds produced identical instances")
	}
}

func TestInstanceSymmetricZeroDiagonal(t *testing.T) {
	inst := NewTSPInstance(12, 5)
	for i := 0; i < inst.N; i++ {
		if inst.Dist[i][i] != 0 {
			t.Fatalf("Dist[%d][%d] = %d", i, i, inst.Dist[i][i])
		}
		for j := 0; j < inst.N; j++ {
			if inst.Dist[i][j] != inst.Dist[j][i] {
				t.Fatalf("asymmetric at (%d,%d)", i, j)
			}
		}
	}
}

func TestMatrixCodec(t *testing.T) {
	inst := NewTSPInstance(6, 9)
	got, err := decodeMatrix(encodeMatrix(inst))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Dist, inst.Dist) {
		t.Fatal("matrix round trip mismatch")
	}
}

func TestMatrixCodecErrors(t *testing.T) {
	for _, s := range []string{"", "matrix", "matrix 2 1 2 3", "notmatrix 1 0", "matrix x"} {
		if _, err := decodeMatrix([]byte(s)); err == nil {
			t.Errorf("decodeMatrix(%q) succeeded", s)
		}
	}
}
