package workloads

import (
	"bytes"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"dpm/internal/analysis"
	"dpm/internal/controller"
	"dpm/internal/core"
	"dpm/internal/kernel"
	"dpm/internal/meter"
)

type out struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (w *out) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

func (w *out) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

func newSys(t *testing.T) (*core.System, *controller.Controller, *out) {
	t.Helper()
	s, err := core.NewSystem(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Shutdown)
	for _, reg := range []func(*core.System) error{RegisterPingPong, RegisterEcho, RegisterTSP} {
		if err := reg(s); err != nil {
			t.Fatal(err)
		}
	}
	w := &out{}
	ctl, err := s.NewController("yellow", w)
	if err != nil {
		t.Fatal(err)
	}
	return s, ctl, w
}

func waitJob(t *testing.T, ctl *controller.Controller, job string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		done := false
		for _, j := range ctl.Jobs() {
			if j.Name != job {
				continue
			}
			done = true
			for _, p := range j.Procs {
				if p.State != controller.StateKilled {
					done = false
				}
			}
		}
		if done {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never completed", job)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestPingPongMetered(t *testing.T) {
	s, ctl, _ := newSys(t)
	ctl.Exec("filter f blue")
	ctl.Exec("newjob pp")
	ctl.Exec("setflags pp all")
	ctl.Exec("addprocess pp green ponger 3")
	ctl.Exec("addprocess pp red pinger green 3")
	ctl.Exec("startjob pp")
	waitJob(t, ctl, "pp")
	deadline := time.Now().Add(5 * time.Second)
	for {
		events, err := s.ReadTrace("blue", "f")
		if err == nil {
			st := analysis.Comm(events)
			if st.Sends >= 6 && st.Recvs >= 6 {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("ping-pong trace incomplete")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestTSPDistributedMatchesSequential(t *testing.T) {
	// The Lai & Miller workload: a 10-city instance solved by a master
	// on red and workers on green and blue, metered end to end. The
	// distributed answer must equal the sequential solver's.
	s, ctl, w := newSys(t)
	const cities, seed = 10, 4
	// Sanity: the solver is deterministic across several seeds before
	// the distributed run uses one of them.
	for sd := int64(1); sd <= 3; sd++ {
		a, _, _ := SolveSequential(NewTSPInstance(9, sd))
		b, _, _ := SolveSequential(NewTSPInstance(9, sd))
		if a != b {
			t.Fatalf("seed %d: nondeterministic solver", sd)
		}
	}
	want, _, _ := SolveSequential(NewTSPInstance(cities, seed))

	ctl.Exec("filter f blue")
	ctl.Exec("newjob tsp")
	ctl.Exec("setflags tsp all")
	ctl.Exec("addprocess tsp red tspmaster " + strconv.Itoa(cities) + " 2 " + strconv.Itoa(seed))
	ctl.Exec("addprocess tsp green tspworker red")
	ctl.Exec("addprocess tsp blue tspworker red")
	ctl.Exec("startjob tsp")
	waitJob(t, ctl, "tsp")

	// The master's stdout is forwarded through the daemon gateway to
	// the controller output.
	deadline := time.Now().Add(5 * time.Second)
	for !strings.Contains(w.String(), "tsp best cost=") {
		if time.Now().After(deadline) {
			t.Fatalf("no master output; controller saw:\n%s", w.String())
		}
		time.Sleep(time.Millisecond)
	}
	if !strings.Contains(w.String(), "tsp best cost="+strconv.Itoa(want)+" ") {
		t.Fatalf("distributed cost differs from sequential %d:\n%s", want, w.String())
	}

	// The trace shows real parallelism: two workers computing.
	deadline = time.Now().Add(5 * time.Second)
	for {
		events, err := s.ReadTrace("blue", "f")
		if err == nil {
			term := 0
			for _, e := range events {
				if e.Type == meter.EvTermProc {
					term++
				}
			}
			if term >= 3 {
				par := analysis.MeasureParallelism(events)
				if par.Processes != 3 {
					t.Fatalf("parallelism saw %d processes", par.Processes)
				}
				if len(analysis.Connections(events)) != 2 {
					t.Fatalf("expected 2 connections, got %d", len(analysis.Connections(events)))
				}
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("tsp trace incomplete")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestEchoAcquire(t *testing.T) {
	// A server started outside the measurement system is acquired and
	// metered (section 4.3), then released by removejob while it
	// continues to run.
	s, ctl, _ := newSys(t)
	red, err := s.Machine("red")
	if err != nil {
		t.Fatal(err)
	}
	server, err := red.Spawn(kernel.SpawnSpec{UID: core.DefaultUID, Name: "echoserver", Path: "/bin/echoserver"})
	if err != nil {
		t.Fatal(err)
	}

	ctl.Exec("filter f blue")
	ctl.Exec("newjob watch")
	ctl.Exec("setflags watch send receive")
	ctl.Exec("acquire watch red " + strconv.Itoa(server.PID()))
	if st := ctl.Jobs()[0].Procs[0].State; st != controller.StateAcquired {
		t.Fatalf("state = %v, want acquired", st)
	}

	// Drive the server with an unmetered client.
	client, err := red.Spawn(kernel.SpawnSpec{UID: core.DefaultUID, Name: "echoclient", Path: "/bin/echoclient", Args: []string{"red", "4"}})
	if err != nil {
		t.Fatal(err)
	}
	if status, _ := client.WaitExit(); status != 0 {
		t.Fatalf("client exited %d", status)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		events, err := s.ReadTrace("blue", "f")
		if err == nil {
			st := analysis.Comm(events)
			if st.Recvs >= 4 && st.Sends >= 4 {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("acquired server produced no trace")
		}
		time.Sleep(time.Millisecond)
	}

	// removejob releases the acquired process but leaves it running.
	ctl.Exec("removejob watch")
	if exited, _, _ := server.Exited(); exited {
		t.Fatal("server terminated by removejob")
	}
	if server.MeterSocketID() != 0 {
		t.Fatal("meter connection not taken down")
	}

	// Shut the server down cleanly.
	shooter, err := red.SpawnDetached(core.DefaultUID, "shooter")
	if err != nil {
		t.Fatal(err)
	}
	fd, _ := shooter.Socket(meter.AFInet, kernel.SockDgram)
	if _, err := shooter.SendTo(fd, []byte("quit"), meter.InetName(red.PrimaryHostID(), EchoPort)); err != nil {
		t.Fatal(err)
	}
	server.WaitExit()
}
