#!/bin/sh
# Runs the filter hot-path and store ingest benchmarks with -benchmem
# and writes the results as JSON (default: BENCH_filter.json at the
# repo root), then the cluster-density benchmarks into a second file
# (default: BENCH_scale.json). CI runs this and archives both; the
# allocation
# regression gates are the testing.AllocsPerRun tests
# (internal/filter/alloc_test.go, internal/store/batch_test.go), which
# fail `go test` outright if a hot-path allocation creeps back in.
#
# The two store ingest benchmarks run with fixed iteration counts that
# write the same total number of records: the in-memory backend keeps
# everything it ingests, so per-record cost grows with the live heap
# and unequal record counts would not be comparable.
set -e
cd "$(dirname "$0")/.."
out="${1:-BENCH_filter.json}"
scale_out="${2:-BENCH_scale.json}"
tmp="$(mktemp)"
scale_tmp="$(mktemp)"
trap 'rm -f "$tmp" "$scale_tmp"' EXIT

go test -run '^$' -bench 'BenchmarkFilterEngine$|BenchmarkFilterEngineProcess$' -benchmem -benchtime=200000x . >"$tmp"
go test -run '^$' -bench 'BenchmarkStoreIngest$' -benchmem -benchtime=1600000x . >>"$tmp"
go test -run '^$' -bench 'BenchmarkStoreIngestBatch$' -benchmem -benchtime=100000x . >>"$tmp"
# Compressed tier: same batch count as BenchmarkStoreIngestBatch so the
# ns/op pair is directly comparable, plus the block-pruned query against
# its segment-pruned baseline. The compression ratio and pruning gates
# below read these lines.
go test -run '^$' -bench 'BenchmarkStoreIngestCompressed$' -benchmem -benchtime=100000x . >>"$tmp"
go test -run '^$' -bench 'BenchmarkQueryBlockPruned' -benchmem -benchtime=50x . >>"$tmp"
# Scaling benchmarks: the parallel ingest pipeline and the concurrent
# query at 1/2/4/8 workers, so the perf trajectory records how the
# system uses cores, not just single-thread ns/op. Fixed iteration
# counts for the same comparability reason as the ingest pair.
go test -run '^$' -bench 'BenchmarkFilterEngineParallel' -benchmem -benchtime=100000x . >>"$tmp"
go test -run '^$' -bench 'BenchmarkQueryParallel' -benchmem -benchtime=20x . >>"$tmp"
# Aggregation push-down: the pushdown/ship-records sub-benchmarks each
# report a bytes_moved metric; their ratio is the wire-traffic
# reduction claimed in EXPERIMENTS.md.
go test -run '^$' -bench 'BenchmarkAggPushdown' -benchmem -benchtime=20x ./internal/agg/ >>"$tmp"
# Live streaming analysis overhead: the full pipeline with and without
# the live tap attached, same iteration count so the ns/op pair is
# directly comparable. The overhead gate below reads these lines; the
# per-record allocation gate is TestTapPathZeroAllocs in
# internal/analysis/live/live_test.go.
go test -run '^$' -bench 'BenchmarkFilterIngestLive' -benchmem -benchtime=100000x . >>"$tmp"

# Fail loudly rather than archive an empty or lying file: every bench
# must have produced a result line, and none may have collapsed to zero
# iterations (a sign the benchmark silently broke).
bench_lines=$(grep -c '^Benchmark' "$tmp" || true)
if [ "$bench_lines" -eq 0 ]; then
    echo "bench_filter.sh: no benchmark results produced" >&2
    exit 1
fi
bad=$(awk '/^Benchmark/ && ($2 + 0) <= 0 { print $1 }' "$tmp")
if [ -n "$bad" ]; then
    echo "bench_filter.sh: benchmarks regressed to 0 iterations:" >&2
    echo "$bad" >&2
    exit 1
fi

# Memory gate for the parallel query path: a second worker must not
# multiply bytes per query (the pooled-buffer fix; the Go-level gate is
# internal/query/alloc_test.go). 1.25x leaves slack over the ~1.2x
# target for heap noise between runs.
awk '
$1 == "BenchmarkQueryParallel/workers=1" { for (i = 3; i < NF; i++) if ($(i+1) == "B/op") seq = $i }
$1 == "BenchmarkQueryParallel/workers=2" { for (i = 3; i < NF; i++) if ($(i+1) == "B/op") par = $i }
END {
    if (seq + 0 <= 0 || par + 0 <= 0) { print "bench_filter.sh: missing QueryParallel B/op results" > "/dev/stderr"; exit 1 }
    ratio = par / seq
    if (ratio > 1.25) {
        printf "bench_filter.sh: QueryParallel workers=2 allocates %d B/op vs %d sequential (%.2fx), gate is 1.25x\n", par, seq, ratio > "/dev/stderr"
        exit 1
    }
}' "$tmp"

# Compression gates. The stored-segment format must actually earn its
# complexity: at least 3x smaller on disk than the v1-equivalent bytes,
# and no more than 1.25x the batched-ingest cost (the structural
# encoding runs inline on the write path). Block pruning must not cost
# more than the segment-pruned baseline it refines: 1.10x slack covers
# scheduler noise on a ~200us benchmark.
awk '
$1 ~ /^BenchmarkStoreIngestBatch(-[0-9]+)?$/ {
    for (i = 3; i < NF; i++) if ($(i+1) == "ns/op") batch = $i
}
$1 ~ /^BenchmarkStoreIngestCompressed(-[0-9]+)?$/ {
    for (i = 3; i < NF; i++) {
        if ($(i+1) == "ns/op")         comp = $i
        if ($(i+1) == "compression-x") cx   = $i
    }
}
$1 ~ /^BenchmarkQueryBlockPruned\/segment-pruned(-[0-9]+)?$/ { for (i = 3; i < NF; i++) if ($(i+1) == "ns/op") segp = $i }
$1 ~ /^BenchmarkQueryBlockPruned\/block-pruned(-[0-9]+)?$/   { for (i = 3; i < NF; i++) if ($(i+1) == "ns/op") blkp = $i }
END {
    fail = 0
    if (cx + 0 <= 0) { print "bench_filter.sh: missing compression-x metric" > "/dev/stderr"; fail = 1 }
    else if (cx + 0 < 3) { printf "bench_filter.sh: compression ratio %.2fx below the 3x gate\n", cx > "/dev/stderr"; fail = 1 }
    if (batch + 0 <= 0 || comp + 0 <= 0) { print "bench_filter.sh: missing ingest ns/op results" > "/dev/stderr"; fail = 1 }
    else if (comp / batch > 1.25) {
        printf "bench_filter.sh: compressed ingest %.0f ns/op vs %.0f batch (%.2fx), gate is 1.25x\n", comp, batch, comp / batch > "/dev/stderr"; fail = 1
    }
    if (segp + 0 <= 0 || blkp + 0 <= 0) { print "bench_filter.sh: missing block-pruned query results" > "/dev/stderr"; fail = 1 }
    else if (blkp / segp > 1.10) {
        printf "bench_filter.sh: block-pruned query %.0f ns/op vs %.0f segment-pruned (%.2fx), gate is 1.10x\n", blkp, segp, blkp / segp > "/dev/stderr"; fail = 1
    }
    exit fail
}' "$tmp"

# Live-analysis overhead gate. The collector's design cost on the
# ingest thread is one buffer swap per 512 records — the operators run
# on a drainer goroutine — so on a multi-core host live=on must stay
# within 1.05x of live=off. On a single-core host there is no spare
# core: the drainer's operator work serializes into the same wall
# clock, and the measured ratio includes the full per-record operator
# cost (~25 ns against a ~200 ns baseline), so the gate widens to
# 1.30x there. Both bounds are recorded in docs/observability.md.
ncpu=$( (nproc || sysctl -n hw.ncpu || echo 1) 2>/dev/null | head -1 )
if [ "$ncpu" -gt 1 ] 2>/dev/null; then live_gate=1.05; else live_gate=1.30; fi
awk -v gate="$live_gate" '
$1 ~ /^BenchmarkFilterIngestLive\/live=off(-[0-9]+)?$/ { for (i = 3; i < NF; i++) if ($(i+1) == "ns/op") off = $i }
$1 ~ /^BenchmarkFilterIngestLive\/live=on(-[0-9]+)?$/  { for (i = 3; i < NF; i++) if ($(i+1) == "ns/op") on  = $i }
END {
    if (off + 0 <= 0 || on + 0 <= 0) { print "bench_filter.sh: missing FilterIngestLive ns/op results" > "/dev/stderr"; exit 1 }
    ratio = on / off
    if (ratio > gate) {
        printf "bench_filter.sh: live analysis ingest %.0f ns/op vs %.0f without (%.2fx), gate is %.2fx\n", on, off, ratio, gate > "/dev/stderr"
        exit 1
    }
}' "$tmp"

awk '
BEGIN { print "{"; print "  \"generated_by\": \"scripts/bench_filter.sh\","; print "  \"benchmarks\": [" }
/^Benchmark/ {
    name = $1; iters = $2
    ns = "null"; mbs = "null"; bop = "null"; aop = "null"; bmv = "null"; cx = "null"; bod = "null"; blkp = "null"
    for (i = 3; i < NF; i++) {
        if ($(i+1) == "ns/op")         ns   = $i
        if ($(i+1) == "MB/s")          mbs  = $i
        if ($(i+1) == "B/op")          bop  = $i
        if ($(i+1) == "allocs/op")     aop  = $i
        if ($(i+1) == "bytes_moved")   bmv  = $i
        if ($(i+1) == "compression-x") cx   = $i
        if ($(i+1) == "bytes_on_disk") bod  = $i
        if ($(i+1) == "blocks-pruned") blkp = $i
    }
    if (n++) printf ",\n"
    printf "    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"mb_per_s\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s, \"bytes_moved\": %s, \"compression_x\": %s, \"bytes_on_disk\": %s, \"blocks_pruned\": %s}", name, iters, ns, mbs, bop, aop, bmv, cx, bod, blkp
}
END { print ""; print "  ]"; print "}" }
' "$tmp" >"$out"

# The emit must carry exactly one JSON entry per benchmark line; a
# mismatch means the awk translation dropped results.
json_entries=$(grep -c '"name":' "$out" || true)
if [ "$json_entries" -ne "$bench_lines" ]; then
    echo "bench_filter.sh: JSON emit failed: $json_entries entries for $bench_lines benchmarks" >&2
    exit 1
fi

echo "wrote $out ($json_entries benchmarks)"

# Cluster-density benchmarks (bench_scale_test.go): machine boot cost
# and fabric delivery rate, archived as BENCH_scale.json next to the
# scale soak's ceilings. Fixed iteration counts for run-to-run
# comparability.
go test -run '^$' -bench 'BenchmarkClusterBoot' -benchtime=10x . >"$scale_tmp"
go test -run '^$' -bench 'BenchmarkDatagramFabric' -benchtime=50000x . >>"$scale_tmp"

scale_lines=$(grep -c '^Benchmark' "$scale_tmp" || true)
if [ "$scale_lines" -eq 0 ]; then
    echo "bench_filter.sh: no scale benchmark results produced" >&2
    exit 1
fi

awk '
BEGIN { print "{"; print "  \"generated_by\": \"scripts/bench_filter.sh\","; print "  \"benchmarks\": [" }
/^Benchmark/ {
    name = $1; iters = $2
    ns = "null"; boot = "null"; bpm = "null"; dps = "null"
    for (i = 3; i < NF; i++) {
        if ($(i+1) == "ns/op")               ns   = $i
        if ($(i+1) == "boot_ms")             boot = $i
        if ($(i+1) == "alloc_bytes/machine") bpm  = $i
        if ($(i+1) == "dgrams/s")            dps  = $i
    }
    if (n++) printf ",\n"
    printf "    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"boot_ms\": %s, \"alloc_bytes_per_machine\": %s, \"dgrams_per_s\": %s}", name, iters, ns, boot, bpm, dps
}
END { print ""; print "  ]"; print "}" }
' "$scale_tmp" >"$scale_out"

scale_entries=$(grep -c '"name":' "$scale_out" || true)
if [ "$scale_entries" -ne "$scale_lines" ]; then
    echo "bench_filter.sh: scale JSON emit failed: $scale_entries entries for $scale_lines benchmarks" >&2
    exit 1
fi

echo "wrote $scale_out ($scale_entries benchmarks)"
